"""Tests for sweep grids and workload specifications."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.workloads.generators import (
    PairWorkload,
    failure_probability_grid,
    paper_failure_probabilities,
    paper_system_sizes,
    system_size_grid,
)


class TestFailureProbabilityGrid:
    def test_default_grid_matches_paper_range(self):
        grid = failure_probability_grid()
        assert grid[0] == 0.0
        assert grid[-1] == 0.9
        assert len(grid) == 10

    def test_custom_step(self):
        assert failure_probability_grid(0.0, 0.2, 0.05) == (0.0, 0.05, 0.1, 0.15, 0.2)

    def test_rejects_bad_step(self):
        with pytest.raises(InvalidParameterError):
            failure_probability_grid(0.0, 0.5, 0.0)

    def test_rejects_reversed_bounds(self):
        with pytest.raises(InvalidParameterError):
            failure_probability_grid(0.5, 0.1, 0.1)

    def test_paper_grid_fast_and_full(self):
        full = paper_failure_probabilities()
        fast = paper_failure_probabilities(fast=True)
        assert len(fast) < len(full)
        assert full[0] == fast[0] == 0.0
        assert max(full) == max(fast) == 0.9
        assert all(0.0 <= q <= 0.9 for q in full)


class TestSystemSizeGrid:
    def test_powers_of_two(self):
        assert system_size_grid(4, 7) == (16, 32, 64, 128)

    def test_rejects_reversed_bounds(self):
        with pytest.raises(InvalidParameterError):
            system_size_grid(8, 4)

    def test_paper_sizes_reach_billions(self):
        sizes = paper_system_sizes()
        assert sizes[0] == 16
        assert sizes[-1] >= 10**10
        fast = paper_system_sizes(fast=True)
        assert len(fast) < len(sizes)


class TestPairWorkload:
    def test_defaults_are_positive(self):
        workload = PairWorkload()
        assert workload.pairs > 0
        assert workload.trials > 0

    def test_invalid_values_rejected(self):
        with pytest.raises(InvalidParameterError):
            PairWorkload(pairs=0)
        with pytest.raises(InvalidParameterError):
            PairWorkload(trials=-1)

    def test_derived_seed_is_deterministic_and_label_dependent(self):
        workload = PairWorkload(seed=1234)
        assert workload.derived_seed("fig6a-tree") == workload.derived_seed("fig6a-tree")
        assert workload.derived_seed("fig6a-tree") != workload.derived_seed("fig6a-xor")

    def test_scaled_keeps_at_least_one_pair(self):
        workload = PairWorkload(pairs=10)
        assert workload.scaled(0.001).pairs == 1
        assert workload.scaled(2.0).pairs == 20

    def test_scaled_rejects_non_positive_factor(self):
        with pytest.raises(InvalidParameterError):
            PairWorkload().scaled(0.0)
