"""Chaos suite: deterministic fault injection against the service tier.

Every test here arms faults on a :class:`repro.service.faults.FaultRegistry`
(exact invocation counts, never probabilities) and proves one failure
policy end-to-end:

* a shard that crashes and succeeds on retry returns rows **byte-identical**
  to a fault-free run (retries never touch random streams or cell identity),
* a hung shard trips the watchdog timeout and the job finishes
  ``done_with_errors`` with the completed shards' results intact,
* transient ``database is locked`` store errors are retried transparently,
* the submission queue bound and rate limit answer 503/429 with
  ``Retry-After``,
* ``DELETE /v1/jobs/{id}`` stops a job between shards and keeps the rows
  completed so far,
* SIGTERM drains the real server subprocess and it exits 0,
* malformed HTTP (bad Content-Length, truncated body, oversized headers,
  empty request line, unknown method) is answered with a clean 4xx —
  never an unanswered connection.

Set ``RCM_CHAOS_LOG_DIR`` to collect server-subprocess logs (the CI chaos
leg uploads them as an artifact when the suite fails).
"""

from __future__ import annotations

import asyncio
import contextlib
import http.client
import json
import os
import signal
import socket
import sqlite3
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.exceptions import (
    ResultStoreError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)
from repro.service.app import ServiceConfig, SweepService
from repro.service.faults import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultRegistry,
    InjectedFault,
    NO_FAULTS,
)
from repro.service.jobs import TERMINAL_STATES, JobManager
from repro.service.store import ResultStore
from repro.sim.engine import SweepRunner

#: Small but real sweep settings shared by the whole module.
PAIRS, TRIALS, SEED = 30, 2, 7
GRID = {"geometries": ["ring"], "d": 5, "q": [0.1, 0.3]}
TWO_SHARD_GRID = {"geometries": ["ring", "xor"], "d": 5, "q": [0.1, 0.3]}

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def faults():
    """A fresh registry per test; teardown wakes any injected hang."""
    registry = FaultRegistry()
    yield registry
    registry.release_hangs()


@contextlib.contextmanager
def manager(tmp_path, faults=None, **overrides):
    """A JobManager over a fresh store, tuned for fast chaos runs."""
    settings = dict(
        pairs=PAIRS, trials=TRIALS, seed=SEED, retry_backoff=0.001, shard_timeout=30.0
    )
    settings.update(overrides)
    store = ResultStore.open(tmp_path / "cells.db")
    jobs = JobManager(store, faults=faults, **settings)
    try:
        yield jobs
    finally:
        if faults is not None:
            faults.release_hangs()
        jobs.close()
        store.close()


def wait_terminal(job, timeout=60.0):
    """Block until ``job`` settles; returns its final state."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if job.state in TERMINAL_STATES:
            return job.state
        time.sleep(0.01)
    raise AssertionError(f"job {job.job_id} did not settle within {timeout}s")


def reference_rows(grid=GRID):
    """The fault-free oracle: the same grid straight through SweepRunner."""
    rows = {}
    with SweepRunner(pairs=PAIRS, replicates=TRIALS, base_seed=SEED) as runner:
        for geometry in grid["geometries"]:
            rows[geometry] = runner.sweep(geometry, grid["d"], grid["q"]).as_rows()
    return rows


class TestFaultRegistry:
    def test_unknown_site_and_kind_are_rejected(self):
        registry = FaultRegistry()
        with pytest.raises(ValueError, match="unknown fault site"):
            registry.arm("no-such-site", "raise-once")
        with pytest.raises(ValueError, match="unknown fault kind"):
            registry.arm("store-read", "explode")
        with pytest.raises(ValueError, match="unknown fault site"):
            registry.fire("no-such-site")

    def test_raise_once_fires_exactly_once(self):
        registry = FaultRegistry()
        spec = registry.arm("shard-execute", "raise-once")
        with pytest.raises(InjectedFault):
            registry.fire("shard-execute")
        registry.fire("shard-execute")  # spent: passes through
        assert spec.fired == 1
        assert registry.hits("shard-execute") == 2

    def test_skip_window_delays_the_fault_deterministically(self):
        registry = FaultRegistry()
        registry.arm("store-write", "raise-n", times=2, skip=1)
        registry.fire("store-write")  # skipped
        with pytest.raises(InjectedFault):
            registry.fire("store-write")
        with pytest.raises(InjectedFault):
            registry.fire("store-write")
        registry.fire("store-write")  # spent

    def test_custom_error_factory_is_raised_verbatim(self):
        registry = FaultRegistry()
        registry.arm(
            "store-read", "raise-once", error=lambda: sqlite3.OperationalError("database is locked")
        )
        with pytest.raises(sqlite3.OperationalError, match="database is locked"):
            registry.fire("store-read")

    def test_hang_is_cancellable(self):
        registry = FaultRegistry()
        registry.arm("shard-execute", "hang", delay=30.0)
        parked = threading.Event()

        def _park():
            parked.set()
            registry.fire("shard-execute")

        thread = threading.Thread(target=_park, daemon=True)
        started = time.monotonic()
        thread.start()
        assert parked.wait(timeout=5.0)
        registry.release_hangs()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert time.monotonic() - started < 10.0  # released, not timed out

    def test_reset_disarms_and_zeroes(self):
        registry = FaultRegistry()
        registry.arm("worker-pool", "raise-once")
        registry.fire("store-read")
        registry.reset()
        assert registry.specs() == ()
        assert registry.hits("store-read") == 0
        registry.fire("worker-pool")  # disarmed: passes through

    def test_no_faults_default_is_a_counter_only(self):
        for site in FAULT_SITES:
            NO_FAULTS.fire(site)  # never raises, hangs or sleeps

    def test_every_advertised_kind_is_armable(self):
        registry = FaultRegistry()
        for kind in FAULT_KINDS:
            registry.arm("shard-execute", kind, delay=0.0)


class TestShardRetryDeterminism:
    def test_crash_then_retry_is_byte_identical_to_fault_free(self, tmp_path, faults):
        """The acceptance invariant: a shard that fails transiently and
        succeeds on attempt two produces rows byte-identical to a run that
        never faulted — retries never touch RNG streams or cell identity."""
        faults.arm("shard-execute", "raise-once")
        with manager(tmp_path / "faulted", faults) as jobs:
            job = jobs.submit(GRID)
            assert wait_terminal(job) == "done"
            assert job.retry_count() == 1
            shards = job.status_payload()["shards"]
            assert shards["states"][0]["attempts"] == 2
            faulted = job.results_payload()["results"]
        with manager(tmp_path / "clean") as jobs:
            job = jobs.submit(GRID)
            assert wait_terminal(job) == "done"
            assert job.retry_count() == 0
            clean = job.results_payload()["results"]
        assert json.dumps(faulted, sort_keys=True) == json.dumps(clean, sort_keys=True)
        assert faulted[0]["rows"] == reference_rows()["ring"]

    def test_permanent_error_is_not_retried(self, tmp_path, faults):
        with manager(tmp_path, faults, shard_retries=3) as jobs:
            job = jobs.submit({"geometries": ["no-such-overlay"], "d": 5, "q": [0.1]})
            assert wait_terminal(job) == "failed"
            (shard,) = job.status_payload()["shards"]["states"]
            assert shard["state"] == "failed"
            assert shard["attempts"] == 1  # semantic errors never retry
            assert "no-such-overlay" in shard["error"]

    def test_transient_exhaustion_fails_the_shard(self, tmp_path, faults):
        faults.arm("shard-execute", "raise-n", times=10)
        with manager(tmp_path, faults, shard_retries=2) as jobs:
            job = jobs.submit(GRID)
            assert wait_terminal(job) == "failed"
            (shard,) = job.status_payload()["shards"]["states"]
            assert shard["attempts"] == 3  # 1 + shard_retries, then give up
            assert "InjectedFault" in shard["error"]
        assert faults.hits("shard-execute") == 3

    def test_partial_failure_yields_done_with_errors(self, tmp_path, faults):
        # Exactly exhaust shard one's attempt budget; shard two runs clean.
        faults.arm("shard-execute", "raise-n", times=3)
        with manager(tmp_path, faults, shard_retries=2) as jobs:
            job = jobs.submit(TWO_SHARD_GRID)
            assert wait_terminal(job) == "done_with_errors"
            payload = job.status_payload()
            assert payload["error"] == "1 of 2 shard(s) failed"
            shards = payload["shards"]
            assert shards["done"] == 1 and shards["failed"] == 1
            results = job.results_payload()["results"]
            assert [entry["geometry"] for entry in results] == ["xor"]
            assert results[0]["rows"] == reference_rows(TWO_SHARD_GRID)["xor"]


class TestShardTimeout:
    def test_hung_shard_trips_watchdog_and_keeps_partial_results(self, tmp_path, faults):
        faults.arm("shard-execute", "hang", delay=60.0)
        with manager(tmp_path, faults, shard_timeout=0.4, shard_retries=2) as jobs:
            job = jobs.submit(TWO_SHARD_GRID)
            assert wait_terminal(job) == "done_with_errors"
            shards = job.status_payload()["shards"]
            states = {entry["geometry"]: entry for entry in shards["states"]}
            assert states["ring"]["state"] == "failed"
            assert "timed out after 0.4s" in states["ring"]["error"]
            assert states["ring"]["attempts"] == 1  # timeouts are not retried
            assert states["xor"]["state"] == "done"
            results = job.results_payload()["results"]
            assert [entry["geometry"] for entry in results] == ["xor"]
            assert results[0]["rows"] == reference_rows(TWO_SHARD_GRID)["xor"]


class TestStoreBusyRetry:
    @staticmethod
    def _locked():
        return sqlite3.OperationalError("database is locked")

    def test_transient_lock_on_read_is_retried_transparently(self, tmp_path, faults):
        with ResultStore.open(tmp_path / "cells.db", faults=faults) as store:
            faults.arm("store-read", "raise-n", times=2, error=self._locked)
            from repro.sim.engine import SweepCell

            assert store.get_cells(
                [SweepCell(geometry="ring", d=6, q=0.1, replicate=0, model="uniform")],
                pairs=50,
                base_seed=7,
            ) == {}
        assert faults.hits("store-read") == 3  # two faulted attempts + success

    def test_transient_lock_on_write_is_retried_transparently(self, tmp_path, faults):
        from repro.dht.metrics import RoutingMetrics
        from repro.sim.engine import SweepCell, SweepCellResult

        cell = SweepCell(geometry="ring", d=6, q=0.1, replicate=0, model="uniform")
        result = SweepCellResult(
            cell=cell,
            pairs=50,
            metrics=RoutingMetrics(
                attempts=50,
                successes=48,
                mean_hops_successful=3.25,
                mean_hops_failed=2.0,
                failure_reasons={},
            ),
        )
        with ResultStore.open(tmp_path / "cells.db", faults=faults) as store:
            faults.arm("store-write", "raise-n", times=2, error=self._locked)
            store.put_cells([result], pairs=50, base_seed=7)
            recalled = store.get_cells([cell], pairs=50, base_seed=7)
        assert recalled == {cell: result}

    def test_lock_exhaustion_surfaces_a_result_store_error(self, tmp_path, faults):
        with ResultStore.open(tmp_path / "cells.db", faults=faults) as store:
            faults.arm("store-read", "raise-n", times=20, error=self._locked)
            from repro.sim.engine import SweepCell

            with pytest.raises(ResultStoreError, match="database is locked"):
                store.get_cells(
                    [SweepCell(geometry="ring", d=6, q=0.1, replicate=0, model="uniform")],
                    pairs=50,
                    base_seed=7,
                )

    def test_non_busy_errors_are_not_retried(self, tmp_path, faults):
        with ResultStore.open(tmp_path / "cells.db", faults=faults) as store:
            faults.arm(
                "store-read",
                "raise-once",
                error=lambda: sqlite3.OperationalError("no such table: cells"),
            )
            from repro.sim.engine import SweepCell

            with pytest.raises(ResultStoreError, match="no such table"):
                store.get_cells(
                    [SweepCell(geometry="ring", d=6, q=0.1, replicate=0, model="uniform")],
                    pairs=50,
                    base_seed=7,
                )
        assert faults.hits("store-read") == 1


# --------------------------------------------------------------------------- #
# HTTP-level chaos: the real stdlib server on an ephemeral port
# --------------------------------------------------------------------------- #
def _config(store_path, **overrides) -> ServiceConfig:
    settings = dict(
        store_path=str(store_path), port=0, pairs=PAIRS, trials=TRIALS, seed=SEED
    )
    settings.update(overrides)
    return ServiceConfig(**settings)


@contextlib.contextmanager
def running_service(store_path, faults=None, **overrides):
    """Run a real SweepService on an ephemeral port; yields ``(port, service)``."""
    service = SweepService(_config(store_path, **overrides), faults=faults)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, name="rcm-chaos-server", daemon=True)
    thread.start()
    server = asyncio.run_coroutine_threadsafe(service.start_server(), loop).result(timeout=10)
    try:
        yield server.sockets[0].getsockname()[1], service
    finally:
        if faults is not None:
            faults.release_hangs()

        async def _shutdown():
            server.close()
            await server.wait_closed()

        asyncio.run_coroutine_threadsafe(_shutdown(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()
        service.close()


def request(port, method, path, body=None):
    """One HTTP request; returns ``(status, parsed-or-text body, headers)``."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        connection.request(method, path, body=payload)
        response = connection.getresponse()
        raw = response.read()
        headers = dict(response.headers.items())
        if response.headers.get_content_type() == "application/json":
            return response.status, json.loads(raw), headers
        return response.status, raw.decode(), headers
    finally:
        connection.close()


def wait_for_http_state(port, job_id, states, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload, _ = request(port, "GET", f"/v1/jobs/{job_id}")
        assert status == 200, payload
        if payload["state"] in states:
            return payload
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not reach {states} within {timeout}s")


def wait_until(predicate, timeout=10.0, message="condition not met"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(message)


class TestBackpressureOverHttp:
    def test_full_queue_answers_503_with_retry_after(self, tmp_path):
        with running_service(tmp_path / "cells.db", max_queued=0) as (port, service):
            status, payload, headers = request(port, "POST", "/v1/sweeps", body=GRID)
            assert status == 503
            assert "queue is full" in payload["error"]
            assert int(headers["Retry-After"]) >= 1
            assert service.jobs.rejected_counts()["queue_full"] == 1
            _, metrics, _ = request(port, "GET", "/metrics")
            assert 'rcm_jobs_rejected_total{reason="queue_full"} 1' in metrics

    def test_rate_limit_answers_429_with_retry_after(self, tmp_path):
        # Refill is ~0: the single burst token admits exactly one submission.
        with running_service(tmp_path / "cells.db", rate_limit=0.001) as (port, service):
            status, accepted, _ = request(port, "POST", "/v1/sweeps", body=GRID)
            assert status == 202
            status, payload, headers = request(port, "POST", "/v1/sweeps", body=GRID)
            assert status == 429
            assert "rate limit" in payload["error"]
            assert int(headers["Retry-After"]) >= 1
            assert service.jobs.rejected_counts()["rate_limit"] == 1
            wait_for_http_state(port, accepted["job_id"], TERMINAL_STATES)

    def test_drain_rejects_submissions_and_cancels_queued_jobs(self, tmp_path):
        registry = FaultRegistry()
        registry.arm("shard-execute", "hang", delay=60.0)
        with running_service(
            tmp_path / "cells.db", faults=registry, max_jobs=1, shard_timeout=30.0
        ) as (port, service):
            status, first, _ = request(port, "POST", "/v1/sweeps", body=GRID)
            assert status == 202
            wait_until(
                lambda: registry.hits("shard-execute") >= 1,
                message="first job never started executing",
            )
            status, queued, _ = request(port, "POST", "/v1/sweeps", body=GRID)
            assert status == 202

            service.begin_drain()

            status, payload, headers = request(port, "POST", "/v1/sweeps", body=GRID)
            assert status == 503
            assert "shutting down" in payload["error"]
            assert int(headers["Retry-After"]) >= 1
            # The queued job must not be stranded: drained to ``cancelled``.
            final = wait_for_http_state(port, queued["job_id"], ("cancelled",))
            assert final["error"] == "cancelled before start"
            registry.release_hangs()
            wait_for_http_state(port, first["job_id"], TERMINAL_STATES)


class TestCancellationOverHttp:
    def test_delete_unknown_job_is_404(self, tmp_path):
        with running_service(tmp_path / "cells.db") as (port, _service):
            status, payload, _ = request(port, "DELETE", "/v1/jobs/no-such-job")
            assert status == 404
            assert "unknown job" in payload["error"]

    def test_cancel_between_shards_keeps_completed_rows(self, tmp_path):
        registry = FaultRegistry()
        registry.arm("shard-execute", "hang", delay=60.0)
        with running_service(
            tmp_path / "cells.db", faults=registry, shard_timeout=30.0
        ) as (port, _service):
            status, accepted, _ = request(port, "POST", "/v1/sweeps", body=TWO_SHARD_GRID)
            assert status == 202
            job_id = accepted["job_id"]
            wait_until(
                lambda: registry.hits("shard-execute") >= 1,
                message="shard one never started executing",
            )
            status, payload, _ = request(port, "DELETE", f"/v1/jobs/{job_id}")
            assert status == 202
            assert payload["state"] in ("running", "cancelled")

            # Shard one finishes normally; shard two is skipped at the boundary.
            registry.release_hangs()
            final = wait_for_http_state(port, job_id, ("cancelled",))
            shards = final["shards"]
            assert shards["done"] == 1 and shards["cancelled"] == 1
            assert final["error"] == "cancelled after 1 of 2 shard(s)"

            status, results, _ = request(port, "GET", f"/v1/jobs/{job_id}/results")
            assert status == 200  # partial results, not an error
            assert [entry["geometry"] for entry in results["results"]] == ["ring"]
            assert results["results"][0]["rows"] == reference_rows()["ring"]

            status, payload, _ = request(port, "DELETE", f"/v1/jobs/{job_id}")
            assert status == 409  # already terminal: nothing to cancel
            assert "nothing to cancel" in payload["error"]

    def test_cancel_queued_job_is_immediate(self, tmp_path):
        registry = FaultRegistry()
        registry.arm("shard-execute", "hang", delay=60.0)
        with running_service(
            tmp_path / "cells.db", faults=registry, max_jobs=1, shard_timeout=30.0
        ) as (port, _service):
            status, first, _ = request(port, "POST", "/v1/sweeps", body=GRID)
            assert status == 202
            wait_until(
                lambda: registry.hits("shard-execute") >= 1,
                message="first job never started executing",
            )
            status, queued, _ = request(port, "POST", "/v1/sweeps", body=GRID)
            assert status == 202
            status, payload, _ = request(port, "DELETE", f"/v1/jobs/{queued['job_id']}")
            assert status == 202
            assert payload["state"] == "cancelled"
            assert payload["error"] == "cancelled before start"
            registry.release_hangs()
            wait_for_http_state(port, first["job_id"], TERMINAL_STATES)


def raw_request(port, data, timeout=15.0):
    """Send raw bytes, half-close, and read the full response (b"" if none)."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as sock:
        sock.sendall(data)
        with contextlib.suppress(OSError):
            sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


class TestHttpParserEdges:
    """Malformed requests get a clean 4xx — never an unanswered connection."""

    def test_empty_request_line_is_400(self, tmp_path):
        with running_service(tmp_path / "cells.db") as (port, _service):
            response = raw_request(port, b"\r\n\r\n")
            assert response.startswith(b"HTTP/1.1 400 ")
            assert b"malformed HTTP request line" in response

    def test_unknown_method_on_known_path_is_405(self, tmp_path):
        with running_service(tmp_path / "cells.db") as (port, _service):
            response = raw_request(port, b"BREW /v1/jobs HTTP/1.1\r\nHost: x\r\n\r\n")
            assert response.startswith(b"HTTP/1.1 405 ")

    def test_non_numeric_content_length_is_400(self, tmp_path):
        with running_service(tmp_path / "cells.db") as (port, _service):
            response = raw_request(
                port, b"POST /v1/sweeps HTTP/1.1\r\nContent-Length: abc\r\n\r\n"
            )
            assert response.startswith(b"HTTP/1.1 400 ")
            assert b"invalid Content-Length" in response

    def test_negative_content_length_is_400(self, tmp_path):
        with running_service(tmp_path / "cells.db") as (port, _service):
            response = raw_request(
                port, b"POST /v1/sweeps HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
            )
            assert response.startswith(b"HTTP/1.1 400 ")
            assert b"invalid Content-Length" in response

    def test_truncated_body_is_400(self, tmp_path):
        with running_service(tmp_path / "cells.db") as (port, _service):
            response = raw_request(
                port, b"POST /v1/sweeps HTTP/1.1\r\nContent-Length: 100\r\n\r\n{}"
            )
            assert response.startswith(b"HTTP/1.1 400 ")
            assert b"shorter than Content-Length" in response

    def test_truncated_header_block_is_400(self, tmp_path):
        with running_service(tmp_path / "cells.db") as (port, _service):
            response = raw_request(port, b"GET /healthz HTTP/1.1\r\n")
            assert response.startswith(b"HTTP/1.1 400 ")
            assert b"truncated HTTP request" in response

    def test_oversized_header_block_is_413(self, tmp_path):
        with running_service(tmp_path / "cells.db") as (port, _service):
            huge = b"GET /healthz HTTP/1.1\r\nX-Pad: " + b"a" * (1 << 17) + b"\r\n\r\n"
            response = raw_request(port, huge)
            assert response.startswith(b"HTTP/1.1 413 ")
            assert b"header block too large" in response

    def test_non_json_body_is_400(self, tmp_path):
        with running_service(tmp_path / "cells.db") as (port, _service):
            body = b"not json"
            head = f"POST /v1/sweeps HTTP/1.1\r\nContent-Length: {len(body)}\r\n\r\n".encode()
            response = raw_request(port, head + body)
            assert response.startswith(b"HTTP/1.1 400 ")
            assert b"not valid JSON" in response


class TestSigtermDrain:
    def test_sigterm_drains_gracefully_and_exits_zero(self, tmp_path):
        """The real ``rcm serve`` process: SIGTERM closes submissions, drains,
        flushes the store, and exits 0 — the contract a container runtime or
        systemd relies on."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--store",
                str(tmp_path / "cells.db"),
                "--drain-timeout",
                "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        lines = []
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                if line:
                    lines.append(line)
                if "listening on" in line:
                    break
                assert process.poll() is None, "".join(lines)
            else:
                raise AssertionError("server never reported listening:\n" + "".join(lines))
            process.send_signal(signal.SIGTERM)
            remainder, _ = process.communicate(timeout=30)
            lines.append(remainder)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=10)
            log_dir = os.environ.get("RCM_CHAOS_LOG_DIR")
            if log_dir:
                Path(log_dir).mkdir(parents=True, exist_ok=True)
                (Path(log_dir) / "sigterm_drain.log").write_text("".join(lines))
        output = "".join(lines)
        assert process.returncode == 0, output
        assert "draining: submissions closed" in output
        assert "drained; exiting" in output


class TestBackpressureExceptionTypes:
    """The library-level contract the HTTP mapping is built on."""

    def test_shutdown_submission_raises_service_unavailable(self, tmp_path):
        with manager(tmp_path) as jobs:
            jobs.begin_drain()
            with pytest.raises(ServiceUnavailableError, match="shutting down") as info:
                jobs.submit(GRID)
            assert info.value.status == 503
            assert info.value.retry_after >= 1

    def test_rate_limit_raises_service_overloaded(self, tmp_path):
        with manager(tmp_path, rate_limit=0.001, max_queued=16) as jobs:
            job = jobs.submit(GRID)
            with pytest.raises(ServiceOverloadedError, match="rate limit") as info:
                jobs.submit(GRID)
            assert info.value.status == 429
            wait_terminal(job)

    def test_job_ttl_evicts_terminal_jobs(self, tmp_path):
        with manager(tmp_path, job_ttl=0.05) as jobs:
            job = jobs.submit(GRID)
            wait_terminal(job)
            time.sleep(0.1)
            jobs.submit(GRID)  # eviction runs on the submission path
            assert jobs.get(job.job_id) is None

    def test_max_retained_jobs_caps_the_table(self, tmp_path):
        with manager(tmp_path, max_retained_jobs=2, job_ttl=None) as jobs:
            finished = [jobs.submit(GRID) for _ in range(3)]
            for job in finished:
                wait_terminal(job)
            jobs.submit(GRID)
            assert len(jobs.jobs()) <= 3  # 2 retained terminal + the new one
