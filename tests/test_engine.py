"""Tests for the vectorized batch simulation engine.

The central invariant: the batch kernels must agree **pair-for-pair** with
the scalar ``Overlay.route`` oracle — same success flag, same hop count,
same :class:`FailureReason` — on every overlay geometry.  Everything else
(metrics aggregation, chunking, worker fan-out) is built on that invariant,
so it is property-tested here across all five overlays and the full failure
range.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.dht.failures import survival_mask
from repro.dht.metrics import summarize_routes
from repro.dht.routing import FAILURE_CODES, FailureReason, failure_reason_from_code
from repro.exceptions import InvalidParameterError, RoutingError
from repro.sim.churn import ChurnConfig, simulate_churn
from repro.sim.engine import SweepCell, SweepRunner, route_pairs
from repro.sim.static_resilience import measure_routability
from repro.sim.sampling import sample_survivor_pairs

from conftest import SMALL_D


def assert_metrics_equal(left, right):
    """Field-wise RoutingMetrics equality that treats nan == nan (empty-mean sentinel)."""
    assert left.attempts == right.attempts
    assert left.successes == right.successes
    assert left.failure_reasons == right.failure_reasons
    for field in ("mean_hops_successful", "mean_hops_failed"):
        a, b = getattr(left, field), getattr(right, field)
        assert a == b or (math.isnan(a) and math.isnan(b)), field


def sampled_batch(overlay, q, count, seed):
    """A survival mask plus ``count`` sampled survivor pairs for ``overlay``."""
    rng = np.random.default_rng(seed)
    alive = survival_mask(overlay.n_nodes, q, rng)
    if int(alive.sum()) < 2:
        pytest.skip(f"degenerate pattern at q={q}")
    pairs = np.asarray(sample_survivor_pairs(alive, count, rng), dtype=np.int64)
    return alive, pairs[:, 0], pairs[:, 1]


class TestFailureCodes:
    def test_codes_roundtrip(self):
        for reason, code in FAILURE_CODES.items():
            assert failure_reason_from_code(code) is reason

    def test_unknown_code_rejected(self):
        with pytest.raises(RoutingError):
            failure_reason_from_code(42)


class TestOracleAgreement:
    """Batch routing agrees pair-for-pair with the scalar route() oracle."""

    @pytest.mark.parametrize("q", [0.0, 0.2, 0.5, 0.8])
    def test_batch_matches_scalar_pair_for_pair(self, small_overlays, geometry_name, q):
        overlay = small_overlays[geometry_name]
        alive, sources, destinations = sampled_batch(overlay, q, 250, seed=hash((geometry_name, q)) % 2**31)
        outcome = route_pairs(overlay, sources, destinations, alive)
        assert outcome.n_pairs == 250
        for i in range(outcome.n_pairs):
            oracle = overlay.route(int(sources[i]), int(destinations[i]), alive)
            assert bool(outcome.succeeded[i]) == oracle.succeeded
            assert int(outcome.hops[i]) == oracle.hops
            assert outcome.failure_reason(i) is oracle.failure_reason

    def test_chunking_does_not_change_outcomes(self, small_overlays, geometry_name):
        overlay = small_overlays[geometry_name]
        alive, sources, destinations = sampled_batch(overlay, 0.4, 200, seed=77)
        whole = route_pairs(overlay, sources, destinations, alive)
        chunked = route_pairs(overlay, sources, destinations, alive, batch_size=17)
        assert np.array_equal(whole.succeeded, chunked.succeeded)
        assert np.array_equal(whole.hops, chunked.hops)
        assert np.array_equal(whole.failure_codes, chunked.failure_codes)

    def test_metrics_match_summarize_routes_exactly(self, small_overlays, geometry_name):
        overlay = small_overlays[geometry_name]
        alive, sources, destinations = sampled_batch(overlay, 0.35, 300, seed=13)
        batch_metrics = route_pairs(overlay, sources, destinations, alive).to_metrics()
        scalar_metrics = summarize_routes(
            overlay.route(int(s), int(t), alive) for s, t in zip(sources, destinations)
        )
        assert_metrics_equal(batch_metrics, scalar_metrics)

    def test_no_failures_means_every_pair_routes(self, small_overlays, geometry_name):
        overlay = small_overlays[geometry_name]
        alive = np.ones(overlay.n_nodes, dtype=bool)
        rng = np.random.default_rng(5)
        pairs = np.asarray(sample_survivor_pairs(alive, 100, rng), dtype=np.int64)
        outcome = route_pairs(overlay, pairs[:, 0], pairs[:, 1], alive)
        assert outcome.succeeded.all()
        assert (outcome.failure_codes == FAILURE_CODES[FailureReason.NONE]).all()
        assert outcome.failure_reason_counts() == {}


class TestMeasurementEngines:
    """The batch and scalar engines are interchangeable in the measurement APIs."""

    @pytest.mark.parametrize("q", [0.1, 0.4, 0.7])
    def test_measure_routability_identical_across_engines(self, small_overlays, geometry_name, q):
        overlay = small_overlays[geometry_name]
        batch = measure_routability(overlay, q, pairs=150, trials=2, seed=21, engine="batch")
        scalar = measure_routability(overlay, q, pairs=150, trials=2, seed=21, engine="scalar")
        assert_metrics_equal(batch.metrics, scalar.metrics)
        assert batch.degenerate_trials == scalar.degenerate_trials

    def test_unknown_engine_rejected(self, small_overlays):
        with pytest.raises(InvalidParameterError):
            measure_routability(small_overlays["xor"], 0.2, pairs=10, trials=1, seed=1, engine="warp")

    def test_churn_identical_across_engines(self, small_overlays):
        overlay = small_overlays["xor"]
        config = ChurnConfig(steps_per_epoch=5, pairs_per_step=120)
        batch = simulate_churn(overlay, config, seed=6, engine="batch")
        scalar = simulate_churn(overlay, config, seed=6, engine="scalar")
        for batch_step, scalar_step in zip(batch.steps, scalar.steps):
            assert_metrics_equal(batch_step.metrics, scalar_step.metrics)

    def test_churn_unknown_engine_rejected(self, small_overlays):
        with pytest.raises(InvalidParameterError):
            simulate_churn(small_overlays["xor"], ChurnConfig(), seed=1, engine="warp")


class TestBatchValidation:
    """route_pairs enforces the same preconditions as the scalar path."""

    def test_identical_endpoints_rejected(self, small_overlays, geometry_name):
        overlay = small_overlays[geometry_name]
        alive = np.ones(overlay.n_nodes, dtype=bool)
        with pytest.raises(RoutingError):
            route_pairs(overlay, [3, 4], [3, 9], alive)

    def test_dead_endpoint_rejected(self, small_overlays, geometry_name):
        overlay = small_overlays[geometry_name]
        alive = np.ones(overlay.n_nodes, dtype=bool)
        alive[5] = False
        with pytest.raises(RoutingError):
            route_pairs(overlay, [5], [9], alive)
        with pytest.raises(RoutingError):
            route_pairs(overlay, [9], [5], alive)

    def test_out_of_space_identifier_rejected(self, small_overlays, geometry_name):
        overlay = small_overlays[geometry_name]
        alive = np.ones(overlay.n_nodes, dtype=bool)
        with pytest.raises(RoutingError):
            route_pairs(overlay, [0], [overlay.n_nodes + 5], alive)

    def test_wrong_mask_shape_rejected(self, small_overlays, geometry_name):
        overlay = small_overlays[geometry_name]
        with pytest.raises(RoutingError):
            route_pairs(overlay, [0], [1], np.ones(3, dtype=bool))

    def test_mismatched_pair_arrays_rejected(self, small_overlays):
        overlay = small_overlays["ring"]
        alive = np.ones(overlay.n_nodes, dtype=bool)
        with pytest.raises(RoutingError):
            route_pairs(overlay, [0, 1], [2], alive)


class TestNeighborArray:
    def test_rows_match_neighbors(self, small_overlays, geometry_name):
        overlay = small_overlays[geometry_name]
        table = overlay.neighbor_array()
        assert table.shape[0] == overlay.n_nodes
        for node in (0, 1, overlay.n_nodes // 2, overlay.n_nodes - 1):
            assert tuple(int(v) for v in table[node]) == overlay.neighbors(node)


class TestSweepRunner:
    def test_workers_do_not_change_results(self):
        qs = [0.0, 0.3, 0.6]
        serial = SweepRunner(pairs=120, replicates=2, workers=1, base_seed=404)
        parallel = SweepRunner(pairs=120, replicates=2, workers=4, base_seed=404)
        for geometry in ("tree", "hypercube", "xor", "ring", "smallworld"):
            a = serial.sweep(geometry, SMALL_D, qs)
            b = parallel.sweep(geometry, SMALL_D, qs)
            assert a.routabilities == b.routabilities, geometry
            for left, right in zip(a.results, b.results):
                assert_metrics_equal(left.metrics, right.metrics)

    def test_completed_cells_are_memoized(self):
        runner = SweepRunner(pairs=60, replicates=2, workers=1, base_seed=11)
        first = runner.sweep("xor", SMALL_D, [0.1, 0.5])
        cells_after_first = runner.completed_cells
        second = runner.sweep("xor", SMALL_D, [0.1, 0.5])
        assert runner.completed_cells == cells_after_first == 4
        assert first.routabilities == second.routabilities

    def test_overlapping_grid_only_adds_missing_cells(self):
        runner = SweepRunner(pairs=60, replicates=1, workers=1, base_seed=11)
        runner.sweep("ring", SMALL_D, [0.1])
        assert runner.completed_cells == 1
        runner.sweep("ring", SMALL_D, [0.1, 0.4])
        assert runner.completed_cells == 2

    def test_replicates_pool_into_attempts(self):
        runner = SweepRunner(pairs=50, replicates=3, workers=1, base_seed=7)
        sweep = runner.sweep("hypercube", SMALL_D, [0.2])
        assert sweep.results[0].metrics.attempts == 150
        assert sweep.results[0].trials == 3

    def test_degenerate_cells_are_counted(self):
        # q = 1.0 kills every node, so every replicate is degenerate.
        runner = SweepRunner(pairs=20, replicates=2, workers=1, base_seed=3)
        sweep = runner.sweep("tree", SMALL_D, [1.0])
        assert sweep.results[0].degenerate_trials == 2
        assert sweep.results[0].metrics.attempts == 0

    def test_empty_grid_rejected(self):
        runner = SweepRunner(pairs=10, replicates=1)
        with pytest.raises(InvalidParameterError):
            runner.run([], SMALL_D, [0.1])
        with pytest.raises(InvalidParameterError):
            runner.run(["xor"], SMALL_D, [])

    def test_overlay_options_are_forwarded(self):
        dense = SweepRunner(
            pairs=200, replicates=2, workers=1, base_seed=5,
            overlay_options={"near_neighbors": 2, "shortcuts": 3},
        )
        sparse = SweepRunner(pairs=200, replicates=2, workers=1, base_seed=5)
        dense_sweep = dense.sweep("smallworld", SMALL_D, [0.3])
        sparse_sweep = sparse.sweep("smallworld", SMALL_D, [0.3])
        assert dense_sweep.results[0].routability > sparse_sweep.results[0].routability

    def test_cells_match_direct_engine_measurement(self):
        # A single cell's metrics are reproducible from its deterministic seeds.
        runner = SweepRunner(pairs=80, replicates=1, workers=1, base_seed=2024)
        sweep = runner.sweep("xor", SMALL_D, [0.25])
        rerun = SweepRunner(pairs=80, replicates=1, workers=1, base_seed=2024)
        assert_metrics_equal(
            rerun.sweep("xor", SMALL_D, [0.25]).results[0].metrics, sweep.results[0].metrics
        )

    def test_seed_zero_is_accepted(self):
        # PairWorkload.derived_seed can legitimately produce 0; the runner
        # must accept it like the sequential drivers do.
        runner = SweepRunner(pairs=30, replicates=1, workers=1, base_seed=0)
        sweep = runner.sweep("hypercube", SMALL_D, [0.2])
        assert 0.0 <= sweep.results[0].routability <= 1.0

    def test_cell_key_is_hashable_and_stable(self):
        cell = SweepCell(geometry="xor", d=SMALL_D, q=0.25, replicate=0)
        assert cell == SweepCell(geometry="xor", d=SMALL_D, q=0.25, replicate=0)
        assert hash(cell) == hash(SweepCell(geometry="xor", d=SMALL_D, q=0.25, replicate=0))
