"""Tests for the explicit five-step Reachable Component Method pipeline."""

from __future__ import annotations

import math

import pytest

from repro.core.geometry import get_geometry
from repro.core.rcm import RCMAnalysis, ReachableComponentMethod, analyze
from repro.exceptions import InvalidParameterError


class TestConstruction:
    def test_accepts_geometry_by_name(self):
        method = ReachableComponentMethod("hypercube")
        assert method.geometry.name == "hypercube"

    def test_accepts_geometry_instance(self):
        geometry = get_geometry("ring")
        method = ReachableComponentMethod(geometry)
        assert method.geometry is geometry

    def test_parameters_with_instance_rejected(self):
        geometry = get_geometry("ring")
        with pytest.raises(InvalidParameterError):
            ReachableComponentMethod(geometry, near_neighbors=2)

    def test_parameters_forwarded_by_name(self):
        method = ReachableComponentMethod("smallworld", near_neighbors=2, shortcuts=3)
        assert method.geometry.near_neighbors == 2


class TestSteps:
    def test_step2_matches_geometry_distribution(self):
        method = ReachableComponentMethod("hypercube")
        assert method.step2_distance_distribution(5) == pytest.approx(
            get_geometry("hypercube").distance_distribution(5)
        )

    def test_step3_matches_geometry_successes(self):
        method = ReachableComponentMethod("xor")
        assert method.step3_success_probabilities(6, 0.3) == pytest.approx(
            get_geometry("xor").path_success_probabilities(6, 0.3)
        )

    def test_step4_is_the_weighted_sum_of_steps_2_and_3(self):
        method = ReachableComponentMethod("tree")
        d, q = 8, 0.25
        counts = method.step2_distance_distribution(d)
        successes = method.step3_success_probabilities(d, q)
        assert method.step4_expected_reachable_component(d, q) == pytest.approx(
            float((counts * successes).sum()), rel=1e-9
        )

    def test_step5_is_the_expectation_ratio(self):
        method = ReachableComponentMethod("ring")
        d, q = 10, 0.2
        expected = method.step4_expected_reachable_component(d, q) / ((1 - q) * 2**d - 1)
        assert method.step5_routability(d, q) == pytest.approx(min(1.0, expected), rel=1e-9)


class TestAnalyze:
    @pytest.fixture(scope="class")
    def analysis(self):
        return analyze("hypercube", d=8, q=0.3)

    def test_metadata(self, analysis):
        assert analysis.geometry == "hypercube"
        assert analysis.system == "CAN"
        assert analysis.d == 8
        assert analysis.n_nodes == 256
        assert analysis.q == 0.3

    def test_vectors_have_one_entry_per_distance(self, analysis):
        assert analysis.distances == tuple(range(1, 9))
        assert len(analysis.distance_counts) == 8
        assert len(analysis.phase_failure_probabilities) == 8
        assert len(analysis.path_success_probabilities) == 8

    def test_expected_survivors(self, analysis):
        assert analysis.expected_survivors == pytest.approx(0.7 * 256)

    def test_routability_consistency(self, analysis):
        assert analysis.routability == pytest.approx(
            get_geometry("hypercube").routability(0.3, d=8)
        )
        assert analysis.failed_path_fraction == pytest.approx(1 - analysis.routability)
        assert analysis.failed_path_percent == pytest.approx(100 * (1 - analysis.routability))

    def test_rows_are_consistent_with_vectors(self, analysis):
        rows = analysis.as_rows()
        assert len(rows) == 8
        assert rows[0]["h"] == 1
        assert rows[0]["n_h"] == pytest.approx(analysis.distance_counts[0])
        assert rows[-1]["p_h"] == pytest.approx(analysis.path_success_probabilities[-1])

    def test_expected_component_matches_weighted_sum(self, analysis):
        weighted = sum(
            n * p
            for n, p in zip(analysis.distance_counts, analysis.path_success_probabilities)
        )
        assert analysis.expected_reachable_component == pytest.approx(weighted, rel=1e-9)

    def test_geometry_parameters_forwarded(self):
        analysis = analyze("smallworld", d=10, q=0.2, near_neighbors=2, shortcuts=2)
        baseline = analyze("smallworld", d=10, q=0.2)
        assert analysis.routability > baseline.routability

    def test_huge_d_reports_infinite_component_gracefully(self):
        analysis = analyze("hypercube", d=1200, q=0.1)
        assert math.isinf(analysis.expected_reachable_component)
        assert 0.0 <= analysis.routability <= 1.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(InvalidParameterError):
            analyze("hypercube", d=0, q=0.5)
        with pytest.raises(InvalidParameterError):
            analyze("hypercube", d=4, q=1.5)
