"""Smoke tests: every shipped example runs end to end and prints its tables.

The examples are part of the public deliverable, so they are executed (with
their module-level ``main()``) rather than merely imported.  Monkeypatched
argv keeps the parameterised example on its defaults.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesExist:
    def test_at_least_three_examples_ship(self):
        assert len(EXAMPLE_FILES) >= 3

    def test_quickstart_is_one_of_them(self):
        assert any(path.name == "quickstart.py" for path in EXAMPLE_FILES)

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_examples_have_docstrings_and_main(self, path):
        module = load_example(path)
        assert module.__doc__
        assert hasattr(module, "main")


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_runs_and_prints_output(path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(path)])
    module = load_example(path)
    module.main()
    output = capsys.readouterr().out
    assert len(output.splitlines()) > 5, f"{path.name} produced almost no output"
