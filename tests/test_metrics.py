"""Tests for routing-metrics aggregation."""

from __future__ import annotations

import math

import pytest

from repro.dht.metrics import RoutingMetrics, summarize_routes, wilson_interval
from repro.dht.routing import FailureReason, RouteResult
from repro.exceptions import InvalidParameterError


def success(source, destination, hops=2):
    path = (source,) + tuple(range(1000, 1000 + hops - 1)) + (destination,)
    return RouteResult(source=source, destination=destination, succeeded=True, path=path)


def failure(source, destination, hops=1, reason=FailureReason.DEAD_END):
    path = (source,) + tuple(range(2000, 2000 + hops))
    return RouteResult(
        source=source, destination=destination, succeeded=False, path=path, failure_reason=reason
    )


class TestWilsonInterval:
    def test_interval_contains_point_estimate(self):
        low, high = wilson_interval(80, 100)
        assert low < 0.8 < high

    def test_interval_bounds_are_probabilities(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0
        assert 0.0 < high < 0.2

    def test_zero_trials_is_uninformative(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_more_trials_tighten_the_interval(self):
        narrow = wilson_interval(800, 1000)
        wide = wilson_interval(8, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_invalid_counts_rejected(self):
        with pytest.raises(InvalidParameterError):
            wilson_interval(5, 3)


class TestSummarizeRoutes:
    def test_empty_input(self):
        metrics = summarize_routes([])
        assert metrics.attempts == 0
        assert math.isnan(metrics.routability)
        assert math.isnan(metrics.failed_path_fraction)

    def test_counts_and_fractions(self):
        results = [success(0, 5), success(1, 6), failure(2, 7), failure(3, 8)]
        metrics = summarize_routes(results)
        assert metrics.attempts == 4
        assert metrics.successes == 2
        assert metrics.failures == 2
        assert metrics.routability == pytest.approx(0.5)
        assert metrics.failed_path_fraction == pytest.approx(0.5)

    def test_mean_hops(self):
        results = [success(0, 5, hops=2), success(1, 6, hops=4), failure(2, 7, hops=3)]
        metrics = summarize_routes(results)
        assert metrics.mean_hops_successful == pytest.approx(3.0)
        assert metrics.mean_hops_failed == pytest.approx(3.0)

    def test_failure_reasons_are_tallied(self):
        results = [
            failure(0, 1, reason=FailureReason.DEAD_END),
            failure(2, 3, reason=FailureReason.DEAD_END),
            failure(4, 5, reason=FailureReason.REQUIRED_NEIGHBOR_FAILED),
        ]
        metrics = summarize_routes(results)
        assert metrics.failure_reasons[FailureReason.DEAD_END] == 2
        assert metrics.failure_reasons[FailureReason.REQUIRED_NEIGHBOR_FAILED] == 1

    def test_all_successes_have_nan_failed_hops(self):
        metrics = summarize_routes([success(0, 5)])
        assert math.isnan(metrics.mean_hops_failed)

    def test_confidence_interval_brackets_routability(self):
        results = [success(0, 5)] * 30 + [failure(1, 6)] * 10
        metrics = summarize_routes(results)
        low, high = metrics.routability_confidence_interval
        assert low < metrics.routability < high


class TestMerging:
    def test_merged_counts(self):
        first = summarize_routes([success(0, 5), failure(1, 6)])
        second = summarize_routes([success(2, 7), success(3, 8)])
        merged = first.merged_with(second)
        assert merged.attempts == 4
        assert merged.successes == 3
        assert merged.routability == pytest.approx(0.75)

    def test_merged_mean_hops_is_weighted(self):
        first = summarize_routes([success(0, 5, hops=2)])
        second = summarize_routes([success(1, 6, hops=4), success(2, 7, hops=4)])
        merged = first.merged_with(second)
        assert merged.mean_hops_successful == pytest.approx((2 + 4 + 4) / 3)

    def test_merged_failure_reasons(self):
        first = summarize_routes([failure(0, 1, reason=FailureReason.DEAD_END)])
        second = summarize_routes([failure(2, 3, reason=FailureReason.DEAD_END)])
        merged = first.merged_with(second)
        assert merged.failure_reasons[FailureReason.DEAD_END] == 2

    def test_merge_rejects_other_types(self):
        metrics = summarize_routes([success(0, 5)])
        with pytest.raises(InvalidParameterError):
            metrics.merged_with("not metrics")
