"""Tests for the de Bruijn shuffle-exchange geometry (overlay + analytical model).

The generic behaviour — oracle/spec parity across backends, dispatch modes,
failure models and worker counts — comes for free from the auto-discovering
conformance suite (``tests/test_kernelspec.py``) and the shared overlay
suite (``tests/test_overlay_common.py``); this module covers what is
specific to de Bruijn routing: the shuffle-successor wiring, the
suffix-prefix-overlap rule, and the Koorde analytical model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometries.debruijn import DeBruijnGeometry
from repro.core.geometry import get_geometry
from repro.dht import FailureReason
from repro.dht.debruijn import DeBruijnOverlay, suffix_prefix_overlap

from conftest import SMALL_D


@pytest.fixture(scope="module")
def overlay():
    return DeBruijnOverlay.build(SMALL_D)


def all_alive(overlay):
    return np.ones(overlay.n_nodes, dtype=bool)


class TestTopology:
    def test_out_degree_is_two(self, overlay):
        for node in range(overlay.n_nodes):
            assert len(overlay.neighbors(node)) == 2

    def test_neighbors_are_shuffle_successors(self, overlay):
        mask = overlay.n_nodes - 1
        for node in range(overlay.n_nodes):
            even, odd = (node << 1) & mask, ((node << 1) & mask) | 1
            expected = {even if even != node else node ^ 1, odd if odd != node else node ^ 1}
            assert set(overlay.neighbors(node)) == expected

    def test_shift_fixed_points_carry_the_exchange_link(self, overlay):
        # 0 and 2^d - 1 are the only identifiers whose shuffle successor is
        # themselves; their table substitutes the exchange link x ^ 1.
        assert overlay.neighbors(0) == (1, 1)
        last = overlay.n_nodes - 1
        assert overlay.neighbors(last) == (last ^ 1, last ^ 1)

    def test_neighbor_array_matches_neighbors(self, overlay):
        table = overlay.neighbor_array()
        for node in range(overlay.n_nodes):
            assert tuple(int(v) for v in table[node]) == overlay.neighbors(node)


class TestOverlapRule:
    def test_overlap_bounds_and_exactness(self, overlay):
        d = overlay.d
        assert suffix_prefix_overlap(0b000001, 0b010000, d) == 2  # low "01" == high "01"
        assert suffix_prefix_overlap(0b101010, 0b101011, d) == 4  # low "1010" == high "1010"
        for x in (0, 1, 17, 63):
            for y in (0, 5, 42, 63):
                overlap = suffix_prefix_overlap(x, y, d)
                assert 0 <= overlap <= d - 1
                if overlap:
                    assert (x & ((1 << overlap) - 1)) == (y >> (d - overlap))

    def test_required_next_hop_extends_the_overlap(self, overlay):
        d = overlay.d
        rng = np.random.default_rng(11)
        for _ in range(200):
            x, y = rng.choice(overlay.n_nodes, size=2, replace=False)
            x, y = int(x), int(y)
            next_hop = overlay.required_next_hop(x, y)
            assert next_hop in overlay.neighbors(x)
            if next_hop != y:
                assert suffix_prefix_overlap(next_hop, y, d) >= suffix_prefix_overlap(x, y, d) + 1

    def test_routing_takes_at_most_d_hops(self, overlay, rng):
        alive = all_alive(overlay)
        for _ in range(100):
            source, destination = rng.choice(overlay.n_nodes, size=2, replace=False)
            result = overlay.route(int(source), int(destination), alive)
            assert result.succeeded
            assert result.hops <= overlay.d
            expected = overlay.d - suffix_prefix_overlap(int(source), int(destination), overlay.d)
            assert result.hops == expected

    def test_required_neighbour_failure_drops_the_message(self, overlay):
        alive = all_alive(overlay)
        source, destination = 3, 40
        first_hop = overlay.required_next_hop(source, destination)
        assert first_hop not in (source, destination)
        alive[first_hop] = False
        result = overlay.route(source, destination, alive)
        assert not result.succeeded
        assert result.failure_reason is FailureReason.REQUIRED_NEIGHBOR_FAILED
        assert result.hops == 0


class TestAnalyticalModel:
    def test_registered_with_system_alias(self):
        assert isinstance(get_geometry("debruijn"), DeBruijnGeometry)
        assert isinstance(get_geometry("koorde"), DeBruijnGeometry)

    def test_distance_distribution_doubles_then_saturates(self):
        geometry = DeBruijnGeometry()
        for d in (4, 8, 12):
            n_h = geometry.distance_distribution(d)
            assert np.allclose(n_h[:-1], 2.0 ** np.arange(1, d))
            assert n_h[-1] == pytest.approx(1.0)
            # Conservation: every other node sits at exactly one distance.
            assert n_h.sum() == pytest.approx(2**d - 1)

    def test_measured_shells_match_n_h_away_from_saturation(self, overlay):
        # Count greedy distances from one (aperiodic) root: the doubling
        # shells n(h) = 2^h are exact until the root's suffix self-overlaps
        # start depleting them near h = d.
        d = overlay.d
        counts = np.zeros(d + 1, dtype=int)
        root = 23  # 010111: no suffix of it is one of its own prefixes
        for other in range(overlay.n_nodes):
            if other == root:
                continue
            counts[d - suffix_prefix_overlap(root, other, d)] += 1
        assert list(counts[1:4]) == [2, 4, 8]
        assert counts.sum() == overlay.n_nodes - 1

    def test_tree_like_phase_failure_and_unscalability(self):
        geometry = DeBruijnGeometry()
        for m in (1, 3, 10):
            assert geometry.phase_failure_probability(m, 0.2, 16) == 0.2
        assert geometry.path_success_probability(5, 0.1) == pytest.approx(0.9**5)
        verdict = geometry.scalability()
        assert not verdict.scalable

    def test_routability_decreases_with_q(self):
        geometry = DeBruijnGeometry()
        values = [geometry.routability(q, d=10) for q in (0.0, 0.1, 0.3, 0.6)]
        assert values[0] == 1.0
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_analysis_tracks_simulation(self, overlay):
        # The RCM prediction and the Monte-Carlo measurement must agree
        # roughly (the tree-geometry bound is exact for matched phases).
        from repro.sim.static_resilience import measure_routability

        geometry = DeBruijnGeometry()
        q = 0.15
        measured = measure_routability(overlay, q, pairs=1500, trials=4, seed=9).routability
        predicted = geometry.routability(q, d=overlay.d)
        assert measured == pytest.approx(predicted, abs=0.1)
