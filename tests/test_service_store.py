"""Tests for the persistent result store (``repro.service.store``)."""

from __future__ import annotations

import math
import sqlite3

import pytest

from repro.dht.metrics import RoutingMetrics
from repro.dht.routing import FailureReason
from repro.exceptions import ResultStoreError
from repro.service.store import STORE_SCHEMA_VERSION, ResultStore, cell_store_key
from repro.sim.engine import SweepCell, SweepCellResult, SweepRunner


def _cell(**overrides):
    defaults = dict(geometry="ring", d=6, q=0.1, replicate=0, model="uniform")
    defaults.update(overrides)
    return SweepCell(**defaults)


class TestCellStoreKey:
    def test_key_is_deterministic(self):
        assert cell_store_key(_cell(), pairs=50, base_seed=7) == cell_store_key(
            _cell(), pairs=50, base_seed=7
        )

    @pytest.mark.parametrize(
        "variant",
        [
            dict(geometry="xor"),
            dict(d=8),
            dict(q=0.2),
            dict(replicate=1),
            dict(model="regional"),
        ],
    )
    def test_every_cell_coordinate_changes_the_key(self, variant):
        base = cell_store_key(_cell(), pairs=50, base_seed=7)
        assert cell_store_key(_cell(**variant), pairs=50, base_seed=7) != base

    def test_pairs_and_seed_change_the_key(self):
        base = cell_store_key(_cell(), pairs=50, base_seed=7)
        assert cell_store_key(_cell(), pairs=51, base_seed=7) != base
        assert cell_store_key(_cell(), pairs=50, base_seed=8) != base

    def test_overlay_options_change_the_key(self):
        base = cell_store_key(_cell(), pairs=50, base_seed=7)
        assert cell_store_key(_cell(), pairs=50, base_seed=7, overlay_options=(("k", 2),)) != base

    def test_execution_shape_is_not_in_the_key(self):
        """Backend/workers/batch size/fused are bit-identical by the oracle
        invariant, so they must not fragment the cache."""
        key = cell_store_key(_cell(), pairs=50, base_seed=7)
        for shape_word in ("backend", "workers", "batch", "fused"):
            assert shape_word not in key

    def test_q_uses_full_float_precision(self):
        close = cell_store_key(_cell(q=0.1 + 1e-12), pairs=50, base_seed=7)
        assert close != cell_store_key(_cell(q=0.1), pairs=50, base_seed=7)


class TestResultStoreLifecycle:
    def test_open_creates_parent_directories(self, tmp_path):
        with ResultStore.open(tmp_path / "deep" / "nested" / "cells.db") as store:
            assert len(store) == 0

    def test_open_rejects_a_directory_path(self, tmp_path):
        with pytest.raises(ResultStoreError, match="is a directory"):
            ResultStore.open(tmp_path)

    def test_open_rejects_uncreatable_parent(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        with pytest.raises(ResultStoreError, match="cannot create result-store directory"):
            ResultStore.open(blocker / "sub" / "cells.db")

    def test_open_rejects_schema_version_mismatch(self, tmp_path):
        path = tmp_path / "cells.db"
        ResultStore.open(path).close()
        connection = sqlite3.connect(path)
        connection.execute("UPDATE meta SET value = '999' WHERE key = 'schema_version'")
        connection.commit()
        connection.close()
        with pytest.raises(ResultStoreError, match="schema version 999"):
            ResultStore.open(path)

    def test_describe_is_json_safe(self, tmp_path):
        with ResultStore.open(tmp_path / "cells.db") as store:
            summary = store.describe()
        assert summary["schema_version"] == STORE_SCHEMA_VERSION
        assert summary["cells"] == 0
        assert str(tmp_path) in summary["path"]


class TestResultStoreRoundTrip:
    def test_missing_cells_are_absent_not_errors(self, tmp_path):
        with ResultStore.open(tmp_path / "cells.db") as store:
            assert store.get_cells([_cell()], pairs=50, base_seed=7) == {}

    def test_round_trip_preserves_the_result_exactly(self, tmp_path):
        result = SweepCellResult(
            cell=_cell(),
            pairs=50,
            metrics=RoutingMetrics(
                attempts=50,
                successes=48,
                mean_hops_successful=3.25,
                mean_hops_failed=2.0,
                failure_reasons={FailureReason.DEAD_END: 2},
            ),
        )
        with ResultStore.open(tmp_path / "cells.db") as store:
            store.put_cells([result], pairs=50, base_seed=7)
            recalled = store.get_cells([_cell()], pairs=50, base_seed=7)
        assert recalled == {_cell(): result}

    def test_round_trip_preserves_nan_means_of_degenerate_cells(self, tmp_path):
        degenerate = SweepCellResult(
            cell=_cell(q=0.99),
            pairs=50,
            metrics=RoutingMetrics(
                attempts=0,
                successes=0,
                mean_hops_successful=float("nan"),
                mean_hops_failed=float("nan"),
                failure_reasons={},
            ),
            degenerate=True,
        )
        with ResultStore.open(tmp_path / "cells.db") as store:
            store.put_cells([degenerate], pairs=50, base_seed=7)
            recalled = store.get_cells([_cell(q=0.99)], pairs=50, base_seed=7)
        metrics = recalled[_cell(q=0.99)].metrics
        assert math.isnan(metrics.mean_hops_successful)
        assert math.isnan(metrics.mean_hops_failed)
        assert recalled[_cell(q=0.99)].degenerate is True

    def test_corrupt_payload_raises_result_store_error(self, tmp_path):
        path = tmp_path / "cells.db"
        with ResultStore.open(path) as store:
            key = cell_store_key(_cell(), pairs=50, base_seed=7)
            store._connection.execute(
                "INSERT INTO cells (key, payload) VALUES (?, ?)", (key, '{"not": "a result"}')
            )
            store._connection.commit()
            with pytest.raises(ResultStoreError, match="corrupt result-store payload"):
                store.get_cells([_cell()], pairs=50, base_seed=7)

    def test_chunked_lookup_handles_many_cells(self, tmp_path):
        """More cells than one SQLite IN chunk (400 parameters) round-trip fine."""
        cells = [_cell(q=0.1 + 0.0001 * i) for i in range(450)]
        results = [
            SweepCellResult(
                cell=cell,
                pairs=10,
                metrics=RoutingMetrics(
                    attempts=10,
                    successes=10,
                    mean_hops_successful=1.0,
                    mean_hops_failed=float("nan"),
                    failure_reasons={},
                ),
            )
            for cell in cells
        ]
        with ResultStore.open(tmp_path / "cells.db") as store:
            store.put_cells(results, pairs=10, base_seed=7)
            recalled = store.get_cells(cells, pairs=10, base_seed=7)
        assert len(recalled) == 450


class TestSweepRunnerIntegration:
    def test_second_runner_recalls_every_cell_from_the_store(self, tmp_path):
        """A fresh runner (fresh process stand-in) on the same store computes
        zero cells and measures bit-identical rows."""
        path = tmp_path / "cells.db"
        grid = ("ring", 6, [0.1, 0.3])

        with ResultStore.open(path) as store:
            with SweepRunner(pairs=40, replicates=2, base_seed=11, cell_store=store) as runner:
                first = runner.sweep(*grid).as_rows()
                stats = runner.last_run_stats
        assert stats.computed == stats.requested == 4
        assert stats.store_hits == 0

        with ResultStore.open(path) as store:
            with SweepRunner(pairs=40, replicates=2, base_seed=11, cell_store=store) as runner:
                second = runner.sweep(*grid).as_rows()
                stats = runner.last_run_stats
        assert stats.computed == 0
        assert stats.store_hits == stats.requested == 4
        assert second == first

    def test_stored_results_match_a_storeless_runner_bit_for_bit(self, tmp_path):
        with ResultStore.open(tmp_path / "cells.db") as store:
            with SweepRunner(pairs=40, replicates=2, base_seed=11, cell_store=store) as runner:
                runner.sweep("xor", 6, [0.2])
            with SweepRunner(pairs=40, replicates=2, base_seed=11, cell_store=store) as runner:
                cached_rows = runner.sweep("xor", 6, [0.2]).as_rows()
                assert runner.last_run_stats.computed == 0
        with SweepRunner(pairs=40, replicates=2, base_seed=11) as runner:
            direct_rows = runner.sweep("xor", 6, [0.2]).as_rows()
        assert cached_rows == direct_rows

    def test_different_seed_does_not_hit_the_store(self, tmp_path):
        with ResultStore.open(tmp_path / "cells.db") as store:
            with SweepRunner(pairs=40, replicates=1, base_seed=11, cell_store=store) as runner:
                runner.sweep("ring", 6, [0.1])
            with SweepRunner(pairs=40, replicates=1, base_seed=12, cell_store=store) as runner:
                runner.sweep("ring", 6, [0.1])
                assert runner.last_run_stats.store_hits == 0
                assert runner.last_run_stats.computed == 1


class TestBusyRetryDeterminism:
    """The determinism guard: transient ``database is locked`` faults on the
    store's read and write paths are retried transparently and can never
    change a measured number — the surviving rows are bit-identical to a
    fault-free run, and the persisted cells recall bit-identically too."""

    @staticmethod
    def _locked():
        return sqlite3.OperationalError("database is locked")

    def test_sweep_through_a_flaky_store_is_bit_identical(self, tmp_path):
        from repro.service.faults import FaultRegistry

        grid = ("ring", 6, [0.1, 0.3])
        with SweepRunner(pairs=40, replicates=2, base_seed=11) as runner:
            reference = runner.sweep(*grid).as_rows()

        faults = FaultRegistry()
        # Every store interaction of the sweep faults once before passing.
        faults.arm("store-read", "raise-n", times=2, error=self._locked)
        faults.arm("store-write", "raise-n", times=2, error=self._locked)
        path = tmp_path / "cells.db"
        with ResultStore.open(path, faults=faults) as store:
            with SweepRunner(pairs=40, replicates=2, base_seed=11, cell_store=store) as runner:
                flaky_rows = runner.sweep(*grid).as_rows()
                assert runner.last_run_stats.computed == 4
        assert flaky_rows == reference
        assert faults.hits("store-read") >= 2  # the retries actually happened
        assert faults.hits("store-write") >= 2

        # The cells persisted through the faulted writes recall bit-identically.
        with ResultStore.open(path) as store:
            with SweepRunner(pairs=40, replicates=2, base_seed=11, cell_store=store) as runner:
                recalled = runner.sweep(*grid).as_rows()
                assert runner.last_run_stats.computed == 0
                assert runner.last_run_stats.store_hits == 4
        assert recalled == reference

    def test_busy_exhaustion_is_an_error_not_silent_data_loss(self, tmp_path):
        from repro.service.faults import FaultRegistry

        faults = FaultRegistry()
        faults.arm("store-read", "raise-n", times=20, error=self._locked)
        with ResultStore.open(tmp_path / "cells.db", faults=faults) as store:
            with pytest.raises(ResultStoreError, match="database is locked"):
                store.get_cells([_cell()], pairs=50, base_seed=7)
