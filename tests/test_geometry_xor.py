"""Tests for the XOR (Kademlia) geometry closed forms — Sections 4.3.2 and 5.3."""

from __future__ import annotations

import math

import pytest

from repro.core.geometries.xor import XorGeometry


@pytest.fixture(scope="module")
def xor():
    return XorGeometry()


def brute_force_q_xor(m: int, q: float) -> float:
    """Direct evaluation of Eq. 6 without the incremental-product optimisation."""
    total = q**m
    for k in range(1, m):
        product = 1.0
        for j in range(m - k, m):
            product *= 1.0 - q**j
        total += q**m * product
    return total


class TestPhaseFailure:
    @pytest.mark.parametrize("q", [0.05, 0.2, 0.5, 0.8])
    @pytest.mark.parametrize("m", [1, 2, 3, 5, 8])
    def test_matches_brute_force_equation_six(self, xor, q, m):
        assert xor.phase_failure_probability(m, q, 16) == pytest.approx(
            brute_force_q_xor(m, q), rel=1e-12
        )

    def test_single_phase_reduces_to_q(self, xor):
        assert xor.phase_failure_probability(1, 0.37, 16) == pytest.approx(0.37)

    def test_edge_probabilities(self, xor):
        assert xor.phase_failure_probability(4, 0.0, 16) == 0.0
        assert xor.phase_failure_probability(4, 1.0, 16) == 1.0

    def test_bounded_by_m_q_to_m(self, xor):
        # The scalability argument: Q_xor(m) <= m q^m.
        q = 0.6
        for m in range(1, 20):
            assert xor.phase_failure_probability(m, q, 32) <= m * q**m + 1e-12

    def test_larger_than_hypercube_failure(self, xor):
        # XOR phases can also die after suboptimal hops, so Q_xor(m) >= q^m.
        q = 0.4
        for m in range(1, 10):
            assert xor.phase_failure_probability(m, q, 16) >= q**m - 1e-12

    def test_vanishes_for_large_m(self, xor):
        assert xor.phase_failure_probability(200, 0.5, 256) == pytest.approx(0.0, abs=1e-50)


class TestApproximation:
    def test_paper_approximation_close_for_small_q(self, xor):
        # The 1 - x ≈ e^-x approximation in the paper is only meant for small q.
        for m in (2, 4, 6):
            exact = xor.phase_failure_probability(m, 0.05, 16)
            approximate = xor.phase_failure_probability_approximation(m, 0.05)
            assert approximate == pytest.approx(exact, rel=0.2, abs=1e-6)

    def test_approximation_is_a_probability(self, xor):
        for q in (0.1, 0.5, 0.9):
            for m in (1, 3, 7):
                assert 0.0 <= xor.phase_failure_probability_approximation(m, q) <= 1.0


class TestOrderingAcrossGeometries:
    def test_tree_worse_than_xor_worse_than_hypercube(self):
        from repro.core.geometry import get_geometry

        tree = get_geometry("tree")
        xor = get_geometry("xor")
        hypercube = get_geometry("hypercube")
        for q in (0.1, 0.3, 0.5):
            for d in (8, 16):
                assert (
                    tree.routability(q, d=d)
                    <= xor.routability(q, d=d)
                    <= hypercube.routability(q, d=d)
                )

    def test_asymptotically_stable(self, xor):
        small = xor.routability(0.1, d=16)
        large = xor.routability(0.1, d=100)
        assert abs(small - large) < 0.01
        assert large > 0.9


class TestVerdict:
    def test_declared_scalable(self, xor):
        assert xor.scalability().scalable is True
