"""Tests specific to the Kademlia (XOR) overlay simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dht.identifiers import common_prefix_length, xor_distance
from repro.dht.kademlia import KademliaOverlay
from repro.dht.routing import FailureReason
from repro.exceptions import TopologyError

D = 7


@pytest.fixture(scope="module")
def overlay():
    return KademliaOverlay.build(D, seed=21)


def all_alive(overlay):
    return np.ones(overlay.n_nodes, dtype=bool)


class TestTableConstruction:
    def test_bucket_entries_land_in_the_right_xor_range(self, overlay):
        for node in (0, 17, 99, 127):
            for bucket in range(1, D + 1):
                neighbor = overlay.neighbor_for_bucket(node, bucket)
                distance = xor_distance(node, neighbor)
                assert 2 ** (D - bucket) <= distance < 2 ** (D - bucket + 1)

    def test_bucket_entries_share_prefix_and_flip_bucket_bit(self, overlay):
        for node in (5, 80, 127):
            for bucket in range(1, D + 1):
                neighbor = overlay.neighbor_for_bucket(node, bucket)
                assert common_prefix_length(node, neighbor, D) == bucket - 1

    def test_bucket_index_validation(self, overlay):
        with pytest.raises(TopologyError):
            overlay.neighbor_for_bucket(0, 0)
        with pytest.raises(TopologyError):
            overlay.neighbor_for_bucket(0, D + 1)

    def test_different_seeds_give_different_tables(self):
        first = KademliaOverlay.build(D, seed=1)
        second = KademliaOverlay.build(D, seed=2)
        differences = sum(
            first.neighbors(node) != second.neighbors(node) for node in range(first.n_nodes)
        )
        assert differences > 0


class TestRouting:
    def test_xor_distance_strictly_decreases_along_the_path(self, overlay, rng):
        alive = all_alive(overlay)
        for _ in range(40):
            source, destination = rng.choice(overlay.n_nodes, size=2, replace=False)
            result = overlay.route(int(source), int(destination), alive)
            assert result.succeeded
            distances = [xor_distance(node, int(destination)) for node in result.path]
            assert all(b < a for a, b in zip(distances, distances[1:]))

    def test_falls_back_to_lower_order_bits_when_optimal_neighbor_dies(self, overlay):
        # Choose a destination whose optimal (highest-bucket) neighbour we can kill
        # while a lower-order fallback still exists.
        source = 0
        destination = 0b1100000
        alive = all_alive(overlay)
        optimal = overlay.neighbor_for_bucket(source, 1)
        if optimal == destination:
            pytest.skip("random table happens to link the source straight to the destination")
        alive[optimal] = False
        result = overlay.route(source, destination, alive)
        if result.succeeded:
            # The first hop cannot be the dead optimal neighbour.
            assert result.path[1] != optimal
        else:
            assert result.failure_reason is FailureReason.DEAD_END

    def test_route_fails_only_at_a_dead_end(self, overlay):
        source, destination = 0, 1
        alive = all_alive(overlay)
        # Kill every neighbour of the source that would make progress towards 1.
        for neighbor in overlay.neighbors(source):
            if xor_distance(neighbor, destination) < xor_distance(source, destination):
                alive[neighbor] = False
        if alive[destination]:
            result = overlay.route(source, destination, alive)
            assert not result.succeeded
            assert result.failure_reason is FailureReason.DEAD_END

    def test_direct_neighbor_is_used_for_the_last_bit(self, overlay):
        # The bucket-D neighbour is deterministic: it differs only in the last bit.
        source = 0b0101010
        neighbor = overlay.neighbor_for_bucket(source, D)
        assert xor_distance(source, neighbor) == 1
