"""Unit and property tests for the series/product tools behind Knopp's theorem."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.series import (
    SeriesVerdict,
    diagnose_series_convergence,
    estimate_product_limit,
    knopp_product_positive,
    log_product_from_terms,
    partial_products,
    partial_sums,
    product_from_terms,
    ratio_test,
)
from repro.exceptions import ConvergenceError, InvalidParameterError


class TestPartialSumsAndProducts:
    def test_partial_sums(self):
        assert partial_sums([1, 2, 3]) == [1.0, 3.0, 6.0]

    def test_partial_products(self):
        assert partial_products([2, 3, 4]) == [2.0, 6.0, 24.0]

    def test_empty_inputs(self):
        assert partial_sums([]) == []
        assert partial_products([]) == []


class TestProductFromTerms:
    def test_matches_manual_product(self):
        terms = [0.1, 0.2, 0.3]
        expected = 0.9 * 0.8 * 0.7
        assert product_from_terms(terms) == pytest.approx(expected)

    def test_certain_failure_collapses_product(self):
        assert product_from_terms([0.5, 1.0, 0.1]) == 0.0

    def test_rejects_out_of_range_terms(self):
        with pytest.raises(InvalidParameterError):
            product_from_terms([0.5, 1.5])

    def test_log_product_matches_linear(self):
        terms = [0.05, 0.1, 0.2, 0.4]
        assert math.exp(log_product_from_terms(terms)) == pytest.approx(product_from_terms(terms))

    def test_log_product_returns_neg_inf_on_certain_failure(self):
        assert log_product_from_terms([0.2, 1.0]) == float("-inf")

    @given(st.lists(st.floats(min_value=0.0, max_value=0.99), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_product_always_in_unit_interval(self, terms):
        value = product_from_terms(terms)
        assert 0.0 <= value <= 1.0


class TestKnopp:
    def test_convergent_series_gives_positive_product(self):
        assert knopp_product_positive(True) is True

    def test_divergent_series_gives_zero_product(self):
        assert knopp_product_positive(False) is False


class TestRatioTest:
    def test_geometric_series_ratio(self):
        ratio = ratio_test(lambda m: 0.5**m)
        assert ratio == pytest.approx(0.5, rel=1e-6)

    def test_constant_series_ratio(self):
        ratio = ratio_test(lambda m: 0.3)
        assert ratio == pytest.approx(1.0)

    def test_underflowing_series_returns_none(self):
        assert ratio_test(lambda m: 0.0) is None

    def test_rejects_negative_terms(self):
        with pytest.raises(InvalidParameterError):
            ratio_test(lambda m: -1.0)


class TestDiagnoseSeriesConvergence:
    def test_geometric_series_converges(self):
        verdict = diagnose_series_convergence(lambda m: 0.3**m)
        assert verdict.converges is True

    def test_constant_series_diverges(self):
        verdict = diagnose_series_convergence(lambda m: 0.2)
        assert verdict.converges is False

    def test_m_times_geometric_converges(self):
        verdict = diagnose_series_convergence(lambda m: m * 0.5**m)
        assert verdict.converges is True

    def test_underflowed_tail_converges(self):
        verdict = diagnose_series_convergence(lambda m: 1e-3 if m < 5 else 0.0)
        assert verdict.converges is True

    def test_verdict_reports_partial_sum(self):
        verdict = diagnose_series_convergence(lambda m: 0.5**m, max_terms=64)
        assert verdict.partial_sum == pytest.approx(1.0, abs=1e-6)

    def test_product_positive_mirrors_convergence(self):
        verdict = diagnose_series_convergence(lambda m: 0.5**m)
        assert verdict.product_positive is verdict.converges

    def test_rejects_negative_terms(self):
        with pytest.raises(InvalidParameterError):
            diagnose_series_convergence(lambda m: -0.1)


class TestEstimateProductLimit:
    def test_geometric_failure_terms(self):
        # prod (1 - 0.5^m) converges to about 0.2887880951.
        limit = estimate_product_limit(lambda m: 0.5**m)
        assert limit == pytest.approx(0.2887880951, rel=1e-6)

    def test_constant_failure_terms_collapse_to_zero(self):
        assert estimate_product_limit(lambda m: 0.3) == 0.0

    def test_certain_failure_is_zero(self):
        assert estimate_product_limit(lambda m: 1.0) == 0.0

    def test_zero_failure_terms_give_one(self):
        assert estimate_product_limit(lambda m: 0.0) == 1.0

    def test_rejects_invalid_terms(self):
        with pytest.raises(InvalidParameterError):
            estimate_product_limit(lambda m: 1.2)

    def test_slowly_decaying_series_raises_convergence_error(self):
        # Terms ~ 1/m decay too slowly to stabilise within the budget.
        with pytest.raises(ConvergenceError):
            estimate_product_limit(lambda m: 1.0 / (m + 1.0), max_terms=64)
