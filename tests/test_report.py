"""Tests for the plain-text reporting helpers."""

from __future__ import annotations

import math

import pytest

from repro.core.routability import failed_path_curve
from repro.exceptions import InvalidParameterError
from repro.report.series import merge_curves, render_series_table, shape_summary
from repro.report.tables import format_value, render_csv, render_table


class TestFormatValue:
    def test_floats_are_rounded(self):
        assert format_value(0.123456, precision=3) == "0.123"

    def test_nan_is_a_dash(self):
        assert format_value(float("nan")) == "-"

    def test_booleans_are_words(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_large_and_tiny_floats_use_scientific_notation(self):
        assert "e" in format_value(1.5e12)
        assert "e" in format_value(1.5e-12)

    def test_strings_pass_through(self):
        assert format_value("ring") == "ring"


class TestRenderTable:
    def test_contains_headers_and_values(self):
        rows = [{"geometry": "xor", "routability": 0.9778}, {"geometry": "tree", "routability": 0.489}]
        text = render_table(rows, precision=3)
        assert "geometry" in text
        assert "routability" in text
        assert "0.978" in text
        assert "tree" in text

    def test_title_is_included(self):
        text = render_table([{"a": 1}], title="My table")
        assert text.startswith("My table")

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = render_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_missing_column_rejected(self):
        with pytest.raises(InvalidParameterError):
            render_table([{"a": 1}], columns=["a", "z"])

    def test_empty_rows_rejected(self):
        with pytest.raises(InvalidParameterError):
            render_table([])

    def test_all_rows_are_rendered(self):
        rows = [{"x": i} for i in range(5)]
        text = render_table(rows)
        assert len(text.splitlines()) == 2 + 5  # header + separator + rows


class TestRenderCsv:
    def test_header_and_rows(self):
        rows = [{"q": 0.1, "value": 0.5}, {"q": 0.2, "value": 0.25}]
        csv_text = render_csv(rows)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "q,value"
        assert lines[1].startswith("0.1")
        assert len(lines) == 3

    def test_respects_column_selection(self):
        csv_text = render_csv([{"a": 1, "b": 2}], columns=["b"])
        assert csv_text.strip().splitlines()[0] == "b"


class TestSeries:
    @pytest.fixture(scope="class")
    def curves(self):
        qs = [0.0, 0.2, 0.4]
        return [
            failed_path_curve("tree", qs, d=10),
            failed_path_curve("hypercube", qs, d=10),
        ]

    def test_merge_produces_one_row_per_x(self, curves):
        rows = merge_curves(curves)
        assert len(rows) == 3
        assert set(rows[0]) == {"q", "tree", "hypercube"}

    def test_merge_rejects_mismatched_grids(self, curves):
        other = failed_path_curve("xor", [0.0, 0.3], d=10)
        with pytest.raises(InvalidParameterError):
            merge_curves([curves[0], other])

    def test_merge_rejects_empty_input(self):
        with pytest.raises(InvalidParameterError):
            merge_curves([])

    def test_render_series_table(self, curves):
        text = render_series_table(curves, title="fig6-like")
        assert "fig6-like" in text
        assert "tree" in text and "hypercube" in text

    def test_shape_summary(self, curves):
        summary = shape_summary(curves[0])
        assert summary["first"] == pytest.approx(0.0)
        assert summary["last"] > summary["first"]
        assert summary["monotone_increasing"] == 1.0
        assert summary["monotone_decreasing"] == 0.0
