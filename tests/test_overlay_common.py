"""Behaviour shared by every DHT overlay simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dht import OVERLAY_CLASSES
from repro.dht.routing import FailureReason
from repro.exceptions import RoutingError, TopologyError

from conftest import SMALL_D


def all_alive(overlay):
    return np.ones(overlay.n_nodes, dtype=bool)


class TestRegistry:
    def test_all_overlays_registered(self):
        assert set(OVERLAY_CLASSES) == {
            "tree",
            "hypercube",
            "xor",
            "ring",
            "smallworld",
            "debruijn",
        }

    def test_geometry_and_system_names_set(self):
        for name, cls in OVERLAY_CLASSES.items():
            assert cls.geometry_name == name
            assert cls.system_name


class TestStructure:
    def test_node_count_matches_identifier_space(self, small_overlays, geometry_name):
        overlay = small_overlays[geometry_name]
        assert overlay.n_nodes == 2**SMALL_D
        assert overlay.d == SMALL_D

    def test_routing_tables_are_valid(self, small_overlays, geometry_name):
        small_overlays[geometry_name].validate_tables()

    def test_neighbors_do_not_include_self(self, small_overlays, geometry_name):
        overlay = small_overlays[geometry_name]
        for node in range(overlay.n_nodes):
            assert node not in overlay.neighbors(node)

    def test_degree_statistics(self, small_overlays, geometry_name):
        overlay = small_overlays[geometry_name]
        stats = overlay.degree_statistics()
        assert stats["min"] >= 1
        assert stats["min"] <= stats["mean"] <= stats["max"]

    def test_to_networkx_has_all_nodes(self, small_overlays, geometry_name):
        overlay = small_overlays[geometry_name]
        graph = overlay.to_networkx()
        assert graph.number_of_nodes() == overlay.n_nodes
        assert graph.number_of_edges() > 0

    def test_surviving_subgraph_excludes_dead_nodes(self, small_overlays, geometry_name):
        overlay = small_overlays[geometry_name]
        alive = all_alive(overlay)
        alive[:8] = False
        graph = overlay.surviving_subgraph(alive)
        assert graph.number_of_nodes() == overlay.n_nodes - 8
        assert all(node >= 8 for node in graph.nodes)


class TestRoutingWithoutFailures:
    def test_every_sampled_pair_routes(self, small_overlays, geometry_name, rng):
        overlay = small_overlays[geometry_name]
        alive = all_alive(overlay)
        for _ in range(50):
            source, destination = rng.choice(overlay.n_nodes, size=2, replace=False)
            result = overlay.route(int(source), int(destination), alive)
            assert result.succeeded, (
                f"{geometry_name} failed to route {source}->{destination} with no failures"
            )
            assert result.path[0] == source
            assert result.path[-1] == destination

    def test_paths_do_not_revisit_nodes(self, small_overlays, geometry_name, rng):
        overlay = small_overlays[geometry_name]
        alive = all_alive(overlay)
        for _ in range(30):
            source, destination = rng.choice(overlay.n_nodes, size=2, replace=False)
            result = overlay.route(int(source), int(destination), alive)
            assert len(set(result.path)) == len(result.path)

    def test_hop_counts_are_within_the_budget(self, small_overlays, geometry_name, rng):
        overlay = small_overlays[geometry_name]
        alive = all_alive(overlay)
        for _ in range(30):
            source, destination = rng.choice(overlay.n_nodes, size=2, replace=False)
            result = overlay.route(int(source), int(destination), alive)
            assert result.hops <= overlay.hop_limit()


class TestRoutingArgumentValidation:
    def test_source_equal_destination_rejected(self, small_overlays, geometry_name):
        overlay = small_overlays[geometry_name]
        with pytest.raises(RoutingError):
            overlay.route(3, 3, all_alive(overlay))

    def test_dead_endpoint_rejected(self, small_overlays, geometry_name):
        overlay = small_overlays[geometry_name]
        alive = all_alive(overlay)
        alive[5] = False
        with pytest.raises(RoutingError):
            overlay.route(5, 9, alive)
        with pytest.raises(RoutingError):
            overlay.route(9, 5, alive)

    def test_wrong_mask_shape_rejected(self, small_overlays, geometry_name):
        overlay = small_overlays[geometry_name]
        with pytest.raises(RoutingError):
            overlay.route(0, 1, np.ones(3, dtype=bool))

    def test_out_of_space_identifier_rejected(self, small_overlays, geometry_name):
        overlay = small_overlays[geometry_name]
        with pytest.raises(Exception):
            overlay.route(0, overlay.n_nodes + 5, all_alive(overlay))


class TestRoutingUnderTotalInteriorFailure:
    def test_only_endpoints_alive(self, small_overlays, geometry_name):
        """With every other node dead, routing succeeds only via a direct link."""
        overlay = small_overlays[geometry_name]
        alive = np.zeros(overlay.n_nodes, dtype=bool)
        source, destination = 0, overlay.n_nodes - 1
        alive[source] = alive[destination] = True
        result = overlay.route(source, destination, alive)
        if destination in overlay.neighbors(source):
            assert result.succeeded
        else:
            assert not result.succeeded
            assert result.failure_reason in (
                FailureReason.DEAD_END,
                FailureReason.REQUIRED_NEIGHBOR_FAILED,
            )


class TestBuildValidation:
    def test_build_rejects_rng_and_seed_together(self, geometry_name, rng):
        with pytest.raises(TopologyError):
            OVERLAY_CLASSES[geometry_name].build(4, rng=rng, seed=1)

    def test_build_is_reproducible_with_a_seed(self, geometry_name):
        cls = OVERLAY_CLASSES[geometry_name]
        first = cls.build(5, seed=99)
        second = cls.build(5, seed=99)
        for node in range(first.n_nodes):
            assert first.neighbors(node) == second.neighbors(node)
