"""Tests for the small-world (Symphony) geometry closed forms — Sections 4.3.4 and 5.5."""

from __future__ import annotations

import math

import pytest

from repro.core.geometries.smallworld import SmallWorldGeometry
from repro.exceptions import InvalidParameterError


@pytest.fixture(scope="module")
def symphony():
    return SmallWorldGeometry()


class TestConstruction:
    def test_default_parameters_match_the_paper_figures(self, symphony):
        assert symphony.near_neighbors == 1
        assert symphony.shortcuts == 1

    def test_rejects_non_positive_parameters(self):
        with pytest.raises(InvalidParameterError):
            SmallWorldGeometry(near_neighbors=0)
        with pytest.raises(InvalidParameterError):
            SmallWorldGeometry(shortcuts=-1)


class TestPhaseFailure:
    def test_constant_across_phases(self, symphony):
        values = {symphony.phase_failure_probability(m, 0.3, 16) for m in range(1, 10)}
        assert len(values) == 1

    @pytest.mark.parametrize("q", [0.05, 0.2, 0.5, 0.8])
    @pytest.mark.parametrize("d", [8, 16, 32])
    def test_closed_form_matches_exact_sum(self, symphony, q, d):
        assert symphony.phase_failure_probability(1, q, d) == pytest.approx(
            symphony.phase_failure_probability_exact_sum(q, d), rel=1e-10
        )

    def test_edge_probabilities(self, symphony):
        assert symphony.phase_failure_probability(1, 0.0, 16) == 0.0
        assert symphony.phase_failure_probability(1, 1.0, 16) == 1.0

    def test_more_links_reduce_phase_failure(self):
        sparse = SmallWorldGeometry(near_neighbors=1, shortcuts=1)
        dense = SmallWorldGeometry(near_neighbors=2, shortcuts=2)
        for q in (0.1, 0.3, 0.6):
            assert dense.phase_failure_probability(1, q, 16) < sparse.phase_failure_probability(
                1, q, 16
            )

    def test_degenerate_small_d_is_clamped(self, symphony):
        # ks/d + q^(kn+ks) can exceed 1 for d = 1; the failure probability must
        # remain a probability rather than raising or leaving [0, 1].
        value = symphony.phase_failure_probability(1, 0.95, 1)
        assert 0.0 <= value <= 1.0

    def test_failure_grows_with_identifier_length(self, symphony):
        # With a constant degree, larger rings make the distance-halving shortcut
        # rarer, so the per-phase failure probability grows with d.
        q = 0.2
        values = [symphony.phase_failure_probability(1, q, d) for d in (8, 16, 32, 64)]
        assert all(later > earlier for earlier, later in zip(values, values[1:]))


class TestRoutability:
    def test_distance_distribution_is_ring_like(self, symphony):
        assert symphony.distance_distribution(5) == pytest.approx([1, 2, 4, 8, 16])

    def test_collapses_with_system_size(self, symphony):
        # The unscalability statement of Figure 7(b) in numbers.
        q = 0.1
        values = [symphony.routability(q, d=d) for d in (10, 16, 24, 40, 100)]
        assert all(later < earlier for earlier, later in zip(values, values[1:]))
        assert values[-1] < 0.01

    def test_extra_links_restore_finite_size_routability(self):
        sparse = SmallWorldGeometry(1, 1)
        dense = SmallWorldGeometry(4, 4)
        assert dense.routability(0.1, d=20) > sparse.routability(0.1, d=20) + 0.3


class TestVerdict:
    def test_declared_unscalable(self, symphony):
        verdict = symphony.scalability()
        assert verdict.scalable is False
        assert "constant" in verdict.series_behaviour
