"""Tests for the Monte-Carlo static-resilience simulator."""

from __future__ import annotations

import math

import pytest

from repro.dht.failures import FAILURE_MODEL_KINDS, RegionalFailure, make_failure_model
from repro.exceptions import InvalidParameterError, UnknownGeometryError
from repro.sim.static_resilience import (
    build_overlay,
    measure_routability,
    simulate_geometry,
    sweep_failure_probabilities,
)


class TestBuildOverlay:
    def test_builds_every_geometry(self, geometry_name):
        overlay = build_overlay(geometry_name, 5, seed=1)
        assert overlay.geometry_name == geometry_name
        assert overlay.n_nodes == 32

    def test_unknown_geometry_rejected(self):
        with pytest.raises(UnknownGeometryError):
            build_overlay("pastry", 5)

    def test_extra_options_are_forwarded(self):
        overlay = build_overlay("smallworld", 5, seed=1, near_neighbors=2, shortcuts=3)
        assert overlay.near_neighbor_count == 2
        assert overlay.shortcut_count == 3


class TestMeasureRoutability:
    def test_no_failures_gives_perfect_routability(self, small_overlays, geometry_name):
        result = measure_routability(
            small_overlays[geometry_name], 0.0, pairs=100, trials=1, seed=3
        )
        assert result.routability == pytest.approx(1.0)
        assert result.failed_path_percent == pytest.approx(0.0)

    def test_result_metadata(self, small_overlays):
        result = measure_routability(small_overlays["xor"], 0.2, pairs=50, trials=2, seed=3)
        assert result.geometry == "xor"
        assert result.system == "Kademlia"
        assert result.d == small_overlays["xor"].d
        assert result.q == 0.2
        assert result.metrics.attempts == 100

    def test_same_seed_is_reproducible(self, small_overlays):
        first = measure_routability(small_overlays["ring"], 0.3, pairs=80, trials=2, seed=7)
        second = measure_routability(small_overlays["ring"], 0.3, pairs=80, trials=2, seed=7)
        assert first.routability == second.routability

    def test_higher_failure_probability_hurts(self, small_overlays):
        gentle = measure_routability(small_overlays["hypercube"], 0.1, pairs=400, trials=2, seed=5)
        harsh = measure_routability(small_overlays["hypercube"], 0.6, pairs=400, trials=2, seed=5)
        assert harsh.routability < gentle.routability

    def test_invalid_parameters_rejected(self, small_overlays):
        with pytest.raises(InvalidParameterError):
            measure_routability(small_overlays["tree"], 1.5, pairs=10, trials=1, seed=1)
        with pytest.raises(InvalidParameterError):
            measure_routability(small_overlays["tree"], 0.5, pairs=0, trials=1, seed=1)

    def test_near_total_failure_yields_degenerate_trials(self, small_overlays):
        # At q extremely close to 1 most failure patterns leave fewer than two
        # survivors; those trials are counted rather than crashing.
        result = measure_routability(small_overlays["tree"], 0.999, pairs=10, trials=3, seed=11)
        assert result.degenerate_trials + result.trials >= result.trials
        assert result.metrics.attempts % 10 == 0


class TestSweeps:
    def test_sweep_structure(self, small_overlays):
        sweep = sweep_failure_probabilities(
            small_overlays["hypercube"], [0.0, 0.2, 0.4], pairs=60, trials=1, seed=2
        )
        assert sweep.failure_probabilities == (0.0, 0.2, 0.4)
        assert len(sweep.results) == 3
        assert len(sweep.failed_path_percentages) == 3
        assert len(sweep.routabilities) == 3

    def test_sweep_rows(self, small_overlays):
        sweep = sweep_failure_probabilities(
            small_overlays["hypercube"], [0.1], pairs=40, trials=1, seed=2
        )
        rows = sweep.as_rows()
        assert rows[0]["q"] == 0.1
        assert 0.0 <= rows[0]["routability"] <= 1.0

    def test_empty_sweep_rejected(self, small_overlays):
        with pytest.raises(InvalidParameterError):
            sweep_failure_probabilities(small_overlays["tree"], [], pairs=10, trials=1, seed=1)

    def test_simulate_geometry_end_to_end(self):
        sweep = simulate_geometry("ring", 6, [0.0, 0.3], pairs=80, trials=1, seed=9)
        assert sweep.geometry == "ring"
        assert sweep.results[0].routability == pytest.approx(1.0)
        assert sweep.results[1].routability <= 1.0

    def test_simulate_geometry_is_reproducible(self):
        first = simulate_geometry("xor", 6, [0.2], pairs=100, trials=1, seed=4)
        second = simulate_geometry("xor", 6, [0.2], pairs=100, trials=1, seed=4)
        assert first.routabilities == second.routabilities


class TestFailureModelSweeps:
    """Non-uniform failure models ride the same measurement stack with the
    same scalar/batch bit-identity guarantees as the uniform model."""

    SEVERITY = 0.3

    @pytest.mark.parametrize("kind", FAILURE_MODEL_KINDS)
    def test_batch_matches_scalar_for_every_model_and_geometry(
        self, small_overlays, geometry_name, kind
    ):
        overlay = small_overlays[geometry_name]
        model = make_failure_model(kind, self.SEVERITY)
        batch = measure_routability(
            overlay, self.SEVERITY, pairs=120, trials=2, seed=17,
            failure_model=model, engine="batch",
        )
        scalar = measure_routability(
            overlay, self.SEVERITY, pairs=120, trials=2, seed=17,
            failure_model=model, engine="scalar",
        )
        assert batch.metrics.attempts == scalar.metrics.attempts
        assert batch.metrics.successes == scalar.metrics.successes
        assert batch.metrics.failure_reasons == scalar.metrics.failure_reasons
        assert batch.degenerate_trials == scalar.degenerate_trials
        for field in ("mean_hops_successful", "mean_hops_failed"):
            a, b = getattr(batch.metrics, field), getattr(scalar.metrics, field)
            assert a == b or (math.isnan(a) and math.isnan(b)), field

    def test_result_records_the_model_description(self, small_overlays):
        result = measure_routability(
            small_overlays["ring"], 0.2, pairs=30, trials=1, seed=3,
            failure_model=make_failure_model("regional", 0.2),
        )
        assert "regional" in result.failure_model
        uniform = measure_routability(
            small_overlays["ring"], 0.2, pairs=30, trials=1, seed=3
        )
        assert uniform.failure_model == "uniform"

    def test_sweep_accepts_a_model_kind(self, small_overlays):
        sweep = sweep_failure_probabilities(
            small_overlays["xor"], [0.1, 0.4], pairs=40, trials=1, seed=5,
            failure_models="targeted",
        )
        assert sweep.failure_model == "targeted"
        assert all("in-degree" in r.failure_model for r in sweep.results)

    def test_sweep_uniform_kind_is_the_default_path(self, small_overlays):
        explicit = sweep_failure_probabilities(
            small_overlays["xor"], [0.3], pairs=50, trials=1, seed=9,
            failure_models="uniform",
        )
        default = sweep_failure_probabilities(
            small_overlays["xor"], [0.3], pairs=50, trials=1, seed=9
        )
        assert explicit.routabilities == default.routabilities
        assert explicit.failure_model == default.failure_model == "uniform"

    def test_sweep_accepts_per_point_models(self, small_overlays):
        models = [RegionalFailure(0.1), RegionalFailure(0.4)]
        sweep = sweep_failure_probabilities(
            small_overlays["ring"], [0.1, 0.4], pairs=40, trials=1, seed=5,
            failure_models=models,
        )
        assert len(sweep.results) == 2

    def test_sweep_rejects_mismatched_model_list(self, small_overlays):
        with pytest.raises(InvalidParameterError):
            sweep_failure_probabilities(
                small_overlays["ring"], [0.1, 0.4], pairs=10, trials=1, seed=1,
                failure_models=[RegionalFailure(0.1)],
            )

    def test_simulate_geometry_forwards_failure_models(self):
        sweep = simulate_geometry(
            "ring", 6, [0.2], pairs=60, trials=1, seed=4, failure_models="regional"
        )
        assert sweep.failure_model == "regional"


class TestZeroAttemptSemantics:
    """trials=3, degenerate=3, attempts=0 must round-trip cleanly."""

    def test_all_degenerate_trials_round_trip(self, small_overlays, geometry_name):
        # fraction 1.0 under the targeted model deterministically kills every
        # node, so every trial of every geometry is degenerate.
        overlay = small_overlays[geometry_name]
        result = measure_routability(
            overlay, 1.0, pairs=10, trials=3, seed=2,
            failure_model=make_failure_model("targeted", 1.0),
        )
        assert result.trials == 3
        assert result.degenerate_trials == 3
        assert result.metrics.attempts == 0
        assert not result.metrics.measured
        assert result.metrics.routability_or_none is None
        assert math.isnan(result.routability)

    def test_as_rows_reports_none_not_nan(self, small_overlays):
        sweep = sweep_failure_probabilities(
            small_overlays["tree"], [0.0, 1.0], pairs=10, trials=2, seed=1
        )
        rows = sweep.as_rows()
        assert rows[0]["routability"] == pytest.approx(1.0)
        assert rows[1]["routability"] is None
        assert rows[1]["failed_path_percent"] is None
        assert rows[1]["attempts"] == 0
