"""Tests for the pluggable kernel-backend subsystem (registry + executors).

Since the KernelSpec refactor the backends contain no routing rules; the
scalar-vs-spec parity property tests live in ``tests/test_kernelspec.py``,
driven by the auto-discovering conformance harness
(:mod:`repro.sim.conformance`).  What remains here is the registry
behaviour (resolution, graceful fallback — warned once per process — and
live choices), the shared table-freezing discipline, and the SweepRunner
integration (workers inherit the resolved backend, profiles accumulate).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, UnknownGeometryError
from repro.sim import backends as backends_module
from repro.sim.backends import (
    BACKEND_CHOICES,
    NUMBA_AVAILABLE,
    KernelBackend,
    NumpyBackend,
    available_backends,
    check_backend,
    default_backend_name,
    python_loop_backend,
    resolve_backend,
)
from repro.sim.backends.base import pack_alive_words
from repro.sim.conformance import conformance_backends
from repro.sim.engine import (
    PROFILE_PHASES,
    SweepRunner,
)

from conftest import SMALL_D


def all_backends():
    """Every backend implementation testable in this environment."""
    return [resolve_backend(backend) if isinstance(backend, str) else backend
            for _, backend in conformance_backends()]


class TestRegistry:
    def test_numpy_backend_is_always_available(self):
        assert "numpy" in available_backends()

    def test_available_backends_match_numba_importability(self):
        assert ("numba" in available_backends()) == NUMBA_AVAILABLE

    def test_backend_choices_come_from_the_live_registry(self):
        # "auto" plus every registered backend, importable or not — the CLI
        # help and validation read this, so it must track the registry.
        assert BACKEND_CHOICES[0] == "auto"
        assert set(available_backends()) <= set(BACKEND_CHOICES[1:])
        assert set(BACKEND_CHOICES[1:]) == set(backends_module._BACKEND_REGISTRY)

    def test_resolve_auto_prefers_the_fastest_available(self):
        resolved = resolve_backend("auto")
        assert resolved.name == ("numba" if NUMBA_AVAILABLE else "numpy")
        assert default_backend_name() == resolved.name

    def test_resolve_none_means_auto(self):
        assert resolve_backend(None).name == resolve_backend("auto").name

    def test_resolve_passes_instances_through(self):
        backend = NumpyBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(InvalidParameterError):
            resolve_backend("cuda")
        with pytest.raises(InvalidParameterError):
            check_backend("scalar")

    def test_scalar_engine_ignores_the_backend_without_warning(self, small_overlays):
        # The scalar oracle path uses no kernel backend; a pinned backend
        # must neither warn (numba absent) nor be recorded as the producer.
        import warnings

        from repro.sim.static_resilience import sweep_failure_probabilities

        overlay = small_overlays["xor"]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sweep = sweep_failure_probabilities(
                overlay, [0.2], pairs=20, trials=1, seed=3, engine="scalar", backend="numba"
            )
        assert sweep.backend_name is None

    def test_backends_are_kernel_backends(self):
        for backend in all_backends():
            assert isinstance(backend, KernelBackend)

    def test_unknown_geometry_rejected_by_every_backend(self):
        class FakeOverlay:
            geometry_name = "torus"
            d = 4
            n_nodes = 16

            def neighbor_array(self):
                return np.zeros((16, 2), dtype=np.int64)

            def hop_limit(self):
                return 8

        alive = np.ones(16, dtype=bool)
        for backend in all_backends():
            with pytest.raises(UnknownGeometryError):
                backend.route(FakeOverlay(), np.array([0]), np.array([1]), alive)


@pytest.mark.skipif(NUMBA_AVAILABLE, reason="only meaningful without Numba")
class TestFallbackWarning:
    """Requesting numba without Numba warns — once per process, not per resolve."""

    def test_numba_request_without_numba_falls_back_to_numpy(self, monkeypatch):
        monkeypatch.setattr(backends_module, "_FALLBACK_WARNED", False)
        with pytest.warns(RuntimeWarning, match="falling back to the numpy backend"):
            resolved = resolve_backend("numba")
        assert resolved.name == "numpy"

    def test_fallback_warns_once_per_process(self, monkeypatch):
        # A SweepRunner construction plus every worker-spec resolution all
        # funnel through resolve_backend; only the first may warn.
        import warnings

        monkeypatch.setattr(backends_module, "_FALLBACK_WARNED", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(3):
                assert resolve_backend("numba").name == "numpy"
        relevant = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(relevant) == 1
        assert "once per process" in str(relevant[0].message)


class TestAliveWordPacking:
    @pytest.mark.parametrize("size", [1, 63, 64, 65, 200])
    def test_packed_bits_roundtrip(self, size):
        rng = np.random.default_rng(size)
        alive = rng.random(size) < 0.5
        words = pack_alive_words(alive)
        assert words.dtype == np.uint64
        assert words.size == (size + 63) // 64
        for i in range(size):
            bit = (int(words[i >> 6]) >> (i & 63)) & 1
            assert bool(bit) == bool(alive[i]), i
        # Pad bits beyond the mask read as dead.
        for i in range(size, words.size * 64):
            assert (int(words[i >> 6]) >> (i & 63)) & 1 == 0


class TestReadOnlyTables:
    """Shared routing tables must reject writes."""

    def test_neighbor_array_is_read_only(self, small_overlays, geometry_name):
        table = small_overlays[geometry_name].neighbor_array()
        assert not table.flags.writeable
        with pytest.raises(ValueError):
            table[0, 0] = 0

    def test_union_view_table_is_read_only(self, small_overlays, geometry_name):
        from repro.sim.engine import _UnionOverlayView

        union = _UnionOverlayView(small_overlays[geometry_name], 3)
        table = union.neighbor_array()
        assert not table.flags.writeable
        with pytest.raises(ValueError):
            table[0, 0] = 0


class TestSweepRunnerBackends:
    def test_backend_name_is_exposed_and_resolved(self):
        runner = SweepRunner(pairs=10, replicates=1, backend="auto")
        assert runner.backend_name in available_backends()
        pinned = SweepRunner(pairs=10, replicates=1, backend="numpy")
        assert pinned.backend_name == "numpy"

    def test_sweep_result_records_backend_name(self):
        with SweepRunner(pairs=30, replicates=1, workers=1, base_seed=7) as runner:
            sweep = runner.sweep("xor", SMALL_D, [0.2])
        assert sweep.backend_name == runner.backend_name

    def test_workers_inherit_the_backend(self):
        # Worker specs carry the resolved backend name; a pooled run must
        # produce the same metrics as the in-process run with that backend.
        with SweepRunner(
            pairs=30, replicates=2, workers=3, base_seed=11, backend="numpy"
        ) as pooled:
            pooled_grid = pooled.run(["hypercube"], SMALL_D, [0.2, 0.6])
        with SweepRunner(
            pairs=30, replicates=2, workers=1, base_seed=11, backend="numpy"
        ) as solo:
            solo_grid = solo.run(["hypercube"], SMALL_D, [0.2, 0.6])
        for cell in solo_grid:
            assert pooled_grid[cell].metrics.successes == solo_grid[cell].metrics.successes

    def test_custom_backend_instance_runs_in_process(self):
        # A non-registry instance (the uncompiled loops) is dispatchable too.
        with SweepRunner(
            pairs=20, replicates=1, workers=1, base_seed=5, backend=python_loop_backend()
        ) as runner:
            with SweepRunner(
                pairs=20, replicates=1, workers=1, base_seed=5, backend="numpy"
            ) as reference:
                loop_grid = runner.run(["tree"], SMALL_D, [0.3])
                numpy_grid = reference.run(["tree"], SMALL_D, [0.3])
        for cell in numpy_grid:
            measured, expected = loop_grid[cell].metrics, numpy_grid[cell].metrics
            assert measured.attempts == expected.attempts
            assert measured.successes == expected.successes
            assert measured.failure_reasons == expected.failure_reasons
            for field in ("mean_hops_successful", "mean_hops_failed"):
                a, b = getattr(measured, field), getattr(expected, field)
                assert a == b or (math.isnan(a) and math.isnan(b)), field


class TestProfile:
    def test_profile_accumulates_known_phases(self):
        with SweepRunner(pairs=50, replicates=2, workers=1, base_seed=13) as runner:
            runner.sweep("ring", SMALL_D, [0.1, 0.4])
            profile = runner.profile
        assert profile, "expected a non-empty profile after a sweep"
        assert set(profile) <= set(PROFILE_PHASES)
        for phase in ("overlay_build", "mask_generation", "kernel_hops", "reduction"):
            assert profile[phase] >= 0.0
        assert profile["kernel_hops"] > 0.0

    def test_profile_covers_worker_dispatch(self):
        with SweepRunner(pairs=30, replicates=2, workers=2, base_seed=17) as runner:
            runner.sweep("xor", SMALL_D, [0.2, 0.5])
            profile = runner.profile
        assert profile.get("kernel_hops", 0.0) > 0.0
        # The pooled fused dispatch publishes tables from the parent.
        assert "publish_tables" in profile

    def test_reset_profile_clears_timings(self):
        with SweepRunner(pairs=20, replicates=1, workers=1, base_seed=19) as runner:
            runner.sweep("tree", SMALL_D, [0.3])
            assert runner.profile
            runner.reset_profile()
            assert runner.profile == {}

    def test_memoized_cells_add_no_profile_time(self):
        with SweepRunner(pairs=20, replicates=1, workers=1, base_seed=23) as runner:
            runner.sweep("ring", SMALL_D, [0.2])
            first = runner.profile
            runner.sweep("ring", SMALL_D, [0.2])  # fully memoized
            assert runner.profile == first
