"""Tests for the pluggable kernel-backend subsystem.

Backend parity is the fourth copy of the routing invariant: every backend
must agree **bit-for-bit, pair-for-pair** (success, hops, failure reason)
with the per-cell NumPy path and hence with the scalar ``Overlay.route``
oracle.  The JIT backend's loop bodies are plain Python functions compiled
by Numba when it is installed; here they are exercised both ways — the
uncompiled loops always (so the exact code Numba compiles is verified on
every environment), the compiled loops whenever Numba is importable.
"""

from __future__ import annotations

import math
import zlib

import numpy as np
import pytest

from repro.dht.failures import FAILURE_MODEL_KINDS, make_failure_model, survival_mask
from repro.exceptions import InvalidParameterError, UnknownGeometryError
from repro.sim.backends import (
    BACKEND_CHOICES,
    NUMBA_AVAILABLE,
    KernelBackend,
    NumpyBackend,
    available_backends,
    check_backend,
    default_backend_name,
    python_loop_backend,
    resolve_backend,
)
from repro.sim.backends.base import pack_alive_words
from repro.sim.engine import (
    PROFILE_PHASES,
    SweepRunner,
    route_pairs,
    route_pairs_stacked,
)
from repro.sim.sampling import sample_survivor_pair_arrays
from repro.sim.static_resilience import measure_routability

from conftest import SMALL_D


def all_backends():
    """Every backend implementation testable in this environment."""
    backends = [NumpyBackend(), python_loop_backend()]
    if NUMBA_AVAILABLE:
        backends.append(resolve_backend("numba"))
    return backends


def backend_ids():
    names = ["numpy", "python-loop"]
    if NUMBA_AVAILABLE:
        names.append("numba-jit")
    return names


def sampled_batch(overlay, q, count, seed):
    rng = np.random.default_rng(seed)
    alive = survival_mask(overlay.n_nodes, q, rng)
    if int(alive.sum()) < 2:
        pytest.skip(f"degenerate pattern at q={q}")
    sources, destinations = sample_survivor_pair_arrays(alive, count, rng)
    return alive, sources, destinations


class TestRegistry:
    def test_numpy_backend_is_always_available(self):
        assert "numpy" in available_backends()

    def test_available_backends_match_numba_importability(self):
        assert ("numba" in available_backends()) == NUMBA_AVAILABLE

    def test_backend_choices_cover_the_registry(self):
        assert set(available_backends()) <= set(BACKEND_CHOICES)

    def test_resolve_auto_prefers_the_fastest_available(self):
        resolved = resolve_backend("auto")
        assert resolved.name == ("numba" if NUMBA_AVAILABLE else "numpy")
        assert default_backend_name() == resolved.name

    def test_resolve_none_means_auto(self):
        assert resolve_backend(None).name == resolve_backend("auto").name

    def test_resolve_passes_instances_through(self):
        backend = NumpyBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(InvalidParameterError):
            resolve_backend("cuda")
        with pytest.raises(InvalidParameterError):
            check_backend("scalar")

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="only meaningful without Numba")
    def test_numba_request_without_numba_falls_back_to_numpy(self):
        with pytest.warns(RuntimeWarning, match="falling back to the numpy backend"):
            resolved = resolve_backend("numba")
        assert resolved.name == "numpy"

    def test_scalar_engine_ignores_the_backend_without_warning(self, small_overlays):
        # The scalar oracle path uses no kernel backend; a pinned backend
        # must neither warn (numba absent) nor be recorded as the producer.
        import warnings

        from repro.sim.static_resilience import sweep_failure_probabilities

        overlay = small_overlays["xor"]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sweep = sweep_failure_probabilities(
                overlay, [0.2], pairs=20, trials=1, seed=3, engine="scalar", backend="numba"
            )
        assert sweep.backend_name is None

    def test_backends_are_kernel_backends(self):
        for backend in all_backends():
            assert isinstance(backend, KernelBackend)

    def test_unknown_geometry_rejected_by_every_backend(self):
        class FakeOverlay:
            geometry_name = "torus"
            d = 4
            n_nodes = 16

            def neighbor_array(self):
                return np.zeros((16, 2), dtype=np.int64)

            def hop_limit(self):
                return 8

        alive = np.ones(16, dtype=bool)
        for backend in all_backends():
            with pytest.raises(UnknownGeometryError):
                backend.route(FakeOverlay(), np.array([0]), np.array([1]), alive)


class TestAliveWordPacking:
    @pytest.mark.parametrize("size", [1, 63, 64, 65, 200])
    def test_packed_bits_roundtrip(self, size):
        rng = np.random.default_rng(size)
        alive = rng.random(size) < 0.5
        words = pack_alive_words(alive)
        assert words.dtype == np.uint64
        assert words.size == (size + 63) // 64
        for i in range(size):
            bit = (int(words[i >> 6]) >> (i & 63)) & 1
            assert bool(bit) == bool(alive[i]), i
        # Pad bits beyond the mask read as dead.
        for i in range(size, words.size * 64):
            assert (int(words[i >> 6]) >> (i & 63)) & 1 == 0


class TestBackendParity:
    """Every backend agrees bit-for-bit with the scalar oracle and each other."""

    @pytest.mark.parametrize("q", [0.0, 0.3, 0.6])
    def test_backends_match_scalar_oracle_pair_for_pair(self, small_overlays, geometry_name, q):
        overlay = small_overlays[geometry_name]
        # crc32, not hash(): the sampled batch must not vary with
        # PYTHONHASHSEED, or a parity failure would be unreproducible.
        seed = zlib.crc32(f"backends-{geometry_name}-{q}".encode("utf-8"))
        alive, sources, destinations = sampled_batch(overlay, q, 120, seed=seed)
        outcomes = {
            backend.name + str(i): route_pairs(
                overlay, sources, destinations, alive, backend=backend
            )
            for i, backend in enumerate(all_backends())
        }
        oracle = [
            overlay.route(int(source), int(destination), alive)
            for source, destination in zip(sources.tolist(), destinations.tolist())
        ]
        for label, outcome in outcomes.items():
            for i, route in enumerate(oracle):
                assert bool(outcome.succeeded[i]) == route.succeeded, (label, i)
                assert int(outcome.hops[i]) == route.hops, (label, i)
                assert outcome.failure_reason(i) is route.failure_reason, (label, i)

    def test_backends_match_on_stacked_multi_cell_batches(self, small_overlays, geometry_name):
        overlay = small_overlays[geometry_name]
        rng = np.random.default_rng(97)
        masks, sources, destinations = [], [], []
        for q in (0.0, 0.25, 0.55):
            alive = survival_mask(overlay.n_nodes, q, rng)
            if int(alive.sum()) < 2:
                continue
            src, dst = sample_survivor_pair_arrays(alive, 80, rng)
            masks.append(alive)
            sources.append(src)
            destinations.append(dst)
        arguments = (
            np.concatenate(sources),
            np.concatenate(destinations),
            np.stack(masks),
            np.repeat(np.arange(len(masks), dtype=np.int64), 80),
        )
        reference = route_pairs_stacked(overlay, *arguments, backend="numpy")
        for backend in all_backends():
            outcome = route_pairs_stacked(overlay, *arguments, backend=backend)
            chunked = route_pairs_stacked(overlay, *arguments, backend=backend, batch_size=29)
            for label, candidate in ((backend.name, outcome), (f"{backend.name}+chunk", chunked)):
                assert np.array_equal(reference.succeeded, candidate.succeeded), label
                assert np.array_equal(reference.hops, candidate.hops), label
                assert np.array_equal(reference.failure_codes, candidate.failure_codes), label

    def test_hop_limit_exhaustion_is_identical_across_backends(self, small_overlays):
        # Force the budget to bite: a tiny hop limit makes long ring walks
        # exhaust it, exercising the HOP_LIMIT_EXCEEDED bookkeeping.
        overlay = small_overlays["ring"]
        alive = np.ones(overlay.n_nodes, dtype=bool)
        sources = np.arange(0, 32, dtype=np.int64)
        destinations = (sources + overlay.n_nodes // 2) % overlay.n_nodes

        class Limited:
            def __getattr__(self, item):
                return getattr(overlay, item)

            def hop_limit(self):
                return 2

        limited = Limited()
        reference = route_pairs(limited, sources, destinations, alive, backend="numpy")
        for backend in all_backends():
            outcome = route_pairs(limited, sources, destinations, alive, backend=backend)
            assert np.array_equal(reference.succeeded, outcome.succeeded), backend.name
            assert np.array_equal(reference.hops, outcome.hops), backend.name
            assert np.array_equal(reference.failure_codes, outcome.failure_codes), backend.name
        # The tiny budget must actually bite so the parity above covered the
        # HOP_LIMIT_EXCEEDED branch of every backend.
        from repro.sim.backends.base import HOP_LIMIT_CODE

        assert (reference.failure_codes == HOP_LIMIT_CODE).any()


class TestReadOnlyTables:
    """Shared routing tables must reject writes (regression for satellite 1)."""

    def test_neighbor_array_is_read_only(self, small_overlays, geometry_name):
        table = small_overlays[geometry_name].neighbor_array()
        assert not table.flags.writeable
        with pytest.raises(ValueError):
            table[0, 0] = 0

    def test_union_view_table_is_read_only(self, small_overlays, geometry_name):
        from repro.sim.engine import _UnionOverlayView

        union = _UnionOverlayView(small_overlays[geometry_name], 3)
        table = union.neighbor_array()
        assert not table.flags.writeable
        with pytest.raises(ValueError):
            table[0, 0] = 0

    def test_prepared_mask_tables_are_read_only(self, small_overlays, geometry_name):
        # The numpy kernel factories derive sentinel-masked / bitset tables
        # shared across every hop of a batch; they must be frozen too.
        from repro.sim.backends import numpy_backend as module

        overlay = small_overlays[geometry_name]
        alive = survival_mask(overlay.n_nodes, 0.3, np.random.default_rng(5))
        factory = module.geometry_step_factory(overlay)
        step = factory(overlay, alive)
        derived = [
            cell.cell_contents
            for cell in (step.__closure__ or [])
            if isinstance(cell.cell_contents, np.ndarray) and cell.cell_contents.ndim >= 1
        ]
        frozen = [
            array
            for array in derived
            # alive itself stays writable (caller-owned); derived tables not.
            if array is not alive
        ]
        assert frozen, "expected the factory to close over derived tables"
        for array in frozen:
            assert not array.flags.writeable


class TestSweepRunnerBackends:
    def test_backend_name_is_exposed_and_resolved(self):
        runner = SweepRunner(pairs=10, replicates=1, backend="auto")
        assert runner.backend_name in available_backends()
        pinned = SweepRunner(pairs=10, replicates=1, backend="numpy")
        assert pinned.backend_name == "numpy"

    def test_sweep_result_records_backend_name(self):
        with SweepRunner(pairs=30, replicates=1, workers=1, base_seed=7) as runner:
            sweep = runner.sweep("xor", SMALL_D, [0.2])
        assert sweep.backend_name == runner.backend_name

    @pytest.mark.parametrize("workers", [1, 3])
    def test_backends_measure_identical_sweeps(self, workers):
        grids = {}
        for backend in ["numpy", python_loop_backend()] + (["numba"] if NUMBA_AVAILABLE else []):
            # The python-loop backend cannot be dispatched to workers (it is
            # not a registry name); run it in-process.
            runner_workers = workers if isinstance(backend, str) else 1
            with SweepRunner(
                pairs=40,
                replicates=2,
                workers=runner_workers,
                base_seed=321,
                backend=backend,
            ) as runner:
                grids[str(backend)] = runner.run(
                    ["tree", "ring"], SMALL_D, [0.1, 0.5]
                )
        reference = grids.pop("numpy")
        for label, grid in grids.items():
            assert grid.keys() == reference.keys(), label
            for cell, expected in reference.items():
                measured = grid[cell].metrics
                assert measured.attempts == expected.metrics.attempts, (label, cell)
                assert measured.successes == expected.metrics.successes, (label, cell)
                assert measured.failure_reasons == expected.metrics.failure_reasons, (label, cell)
                for field in ("mean_hops_successful", "mean_hops_failed"):
                    a = getattr(measured, field)
                    b = getattr(expected.metrics, field)
                    assert a == b or (math.isnan(a) and math.isnan(b)), (label, cell, field)

    def test_workers_inherit_the_backend(self):
        # Worker specs carry the resolved backend name; a pooled run must
        # produce the same metrics as the in-process run with that backend.
        with SweepRunner(
            pairs=30, replicates=2, workers=3, base_seed=11, backend="numpy"
        ) as pooled:
            pooled_grid = pooled.run(["hypercube"], SMALL_D, [0.2, 0.6])
        with SweepRunner(
            pairs=30, replicates=2, workers=1, base_seed=11, backend="numpy"
        ) as solo:
            solo_grid = solo.run(["hypercube"], SMALL_D, [0.2, 0.6])
        for cell in solo_grid:
            assert pooled_grid[cell].metrics.successes == solo_grid[cell].metrics.successes


class TestProfile:
    def test_profile_accumulates_known_phases(self):
        with SweepRunner(pairs=50, replicates=2, workers=1, base_seed=13) as runner:
            runner.sweep("ring", SMALL_D, [0.1, 0.4])
            profile = runner.profile
        assert profile, "expected a non-empty profile after a sweep"
        assert set(profile) <= set(PROFILE_PHASES)
        for phase in ("overlay_build", "mask_generation", "kernel_hops", "reduction"):
            assert profile[phase] >= 0.0
        assert profile["kernel_hops"] > 0.0

    def test_profile_covers_worker_dispatch(self):
        with SweepRunner(pairs=30, replicates=2, workers=2, base_seed=17) as runner:
            runner.sweep("xor", SMALL_D, [0.2, 0.5])
            profile = runner.profile
        assert profile.get("kernel_hops", 0.0) > 0.0
        # The pooled fused dispatch publishes tables from the parent.
        assert "publish_tables" in profile

    def test_reset_profile_clears_timings(self):
        with SweepRunner(pairs=20, replicates=1, workers=1, base_seed=19) as runner:
            runner.sweep("tree", SMALL_D, [0.3])
            assert runner.profile
            runner.reset_profile()
            assert runner.profile == {}

    def test_memoized_cells_add_no_profile_time(self):
        with SweepRunner(pairs=20, replicates=1, workers=1, base_seed=23) as runner:
            runner.sweep("ring", SMALL_D, [0.2])
            first = runner.profile
            runner.sweep("ring", SMALL_D, [0.2])  # fully memoized
            assert runner.profile == first


class TestFailureModelBackendParity:
    """Non-uniform failure models measure bit-identical metrics on every
    backend: masks are generated before the kernels run, so backend choice
    must stay invisible across the whole scenario library."""

    @pytest.mark.parametrize("kind", FAILURE_MODEL_KINDS)
    def test_measurement_is_backend_invariant(self, small_overlays, kind):
        overlay = small_overlays["xor"]
        results = [
            measure_routability(
                overlay, 0.35, pairs=80, trials=2, seed=29,
                failure_model=make_failure_model(kind, 0.35),
                engine="batch", backend=backend,
            )
            for backend in all_backends()
        ]
        reference = results[0].metrics
        for result in results[1:]:
            assert result.metrics.attempts == reference.attempts
            assert result.metrics.successes == reference.successes
            assert result.metrics.failure_reasons == reference.failure_reasons
            for field in ("mean_hops_successful", "mean_hops_failed"):
                a, b = getattr(result.metrics, field), getattr(reference, field)
                assert a == b or (math.isnan(a) and math.isnan(b)), field
