"""Tests for the ``rcm`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_routability_arguments(self):
        arguments = build_parser().parse_args(
            ["routability", "--geometry", "xor", "--q", "0.3", "--d", "16"]
        )
        assert arguments.command == "routability"
        assert arguments.geometry == "xor"
        assert arguments.q == 0.3
        assert arguments.d == 16

    def test_unknown_geometry_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["routability", "--geometry", "pastry", "--q", "0.1", "--d", "8"])

    def test_simulate_accepts_multiple_qs(self):
        arguments = build_parser().parse_args(
            ["simulate", "--geometry", "ring", "--q", "0.1", "0.3", "--d", "8"]
        )
        assert arguments.q == [0.1, 0.3]

    def test_fused_dispatch_is_the_default(self):
        arguments = build_parser().parse_args(
            ["simulate", "--geometry", "ring", "--q", "0.1", "--d", "8"]
        )
        assert arguments.fused is True

    def test_per_cell_flag_disables_fusing(self):
        for command in (["simulate", "--geometry", "ring", "--q", "0.1"], ["run", "FIG6A"]):
            arguments = build_parser().parse_args([*command, "--per-cell"])
            assert arguments.fused is False

    def test_fused_and_per_cell_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--geometry", "ring", "--q", "0.1", "--fused", "--per-cell"]
            )


class TestCommands:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "FIG6A" in output
        assert "FIG7B" in output

    def test_routability_command(self, capsys):
        assert main(["routability", "--geometry", "xor", "--q", "0.3", "--d", "16"]) == 0
        output = capsys.readouterr().out
        assert "xor" in output
        assert "routability" in output

    def test_scalability_command(self, capsys):
        assert main(["scalability"]) == 0
        output = capsys.readouterr().out
        assert "smallworld" in output
        assert "hypercube" in output

    def test_compare_command(self, capsys):
        assert main(["compare", "--q", "0.2", "--d", "10"]) == 0
        output = capsys.readouterr().out
        assert "tree" in output and "ring" in output

    def test_simulate_command(self, capsys):
        assert main(
            [
                "simulate",
                "--geometry",
                "hypercube",
                "--d",
                "7",
                "--q",
                "0.0",
                "0.3",
                "--pairs",
                "60",
                "--trials",
                "1",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "routability" in output
        assert "hypercube" in output

    def test_simulate_per_cell_matches_fused(self, capsys):
        command = [
            "simulate", "--geometry", "xor", "--d", "7",
            "--q", "0.2", "0.5", "--pairs", "80", "--trials", "2",
        ]
        assert main(command) == 0
        fused_output = capsys.readouterr().out
        assert main([*command, "--per-cell"]) == 0
        per_cell_output = capsys.readouterr().out
        assert fused_output == per_cell_output

    def test_run_experiment_command(self, capsys):
        assert main(
            ["run", "TAB-SCAL", "--pairs", "50", "--trials", "1"]
        ) == 0
        output = capsys.readouterr().out
        assert "scalability_classification" in output

    def test_run_experiment_csv_export(self, capsys):
        assert main(
            ["run", "FIG7B", "--csv", "fig7b_routability_percent", "--pairs", "50", "--trials", "1"]
        ) == 0
        output = capsys.readouterr().out
        assert output.splitlines()[0].startswith("n_nodes")


class TestFailureModelOption:
    def test_uniform_is_the_default(self):
        arguments = build_parser().parse_args(
            ["simulate", "--geometry", "ring", "--q", "0.1", "--d", "8"]
        )
        assert arguments.failure_model == "uniform"

    def test_unknown_model_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--geometry", "ring", "--q", "0.1", "--failure-model", "meteor"]
            )

    @pytest.mark.parametrize("model", ["targeted", "regional", "subtree", "uniform+regional"])
    def test_simulate_runs_under_every_model(self, model, capsys):
        assert main(
            [
                "simulate", "--geometry", "xor", "--d", "6",
                "--q", "0.3", "--pairs", "40", "--trials", "1",
                "--failure-model", model,
            ]
        ) == 0
        output = capsys.readouterr().out
        assert model in output  # the table title names the model

    def test_per_cell_matches_fused_for_nonuniform_model(self, capsys):
        command = [
            "simulate", "--geometry", "ring", "--d", "6",
            "--q", "0.2", "0.5", "--pairs", "60", "--trials", "2",
            "--failure-model", "regional",
        ]
        assert main(command) == 0
        fused_output = capsys.readouterr().out
        assert main([*command, "--per-cell"]) == 0
        assert fused_output == capsys.readouterr().out


class TestChurnTraceOption:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        from repro.workloads import markov_trace

        path = tmp_path / "trace.txt"
        markov_trace(
            64, 6, leave_probability=0.1, rejoin_probability=0.05, seed=23
        ).save(path)
        return str(path)

    def test_simulate_without_q_or_trace_is_a_parser_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--geometry", "xor", "--d", "6"])
        assert "--churn-trace" in capsys.readouterr().err

    def test_trace_replay_prints_per_step_rows(self, trace_path, capsys):
        assert main(
            [
                "simulate", "--geometry", "xor", "--d", "6",
                "--churn-trace", trace_path, "--pairs", "40",
                "--churn-repair-every", "2",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "Trace-driven churn" in output
        assert "usable_fraction" in output

    def test_trace_profile_reports_the_churn_phases(self, trace_path, capsys):
        assert main(
            [
                "simulate", "--geometry", "ring", "--d", "6",
                "--churn-trace", trace_path, "--pairs", "40", "--profile",
            ]
        ) == 0
        output = capsys.readouterr().out
        for phase in ("mask_delta", "state_update", "kernel_hops", "reduction"):
            assert phase in output

    def test_trace_json_export(self, trace_path, tmp_path, capsys):
        import json

        path = tmp_path / "churn.json"
        assert main(
            [
                "simulate", "--geometry", "xor", "--d", "6",
                "--churn-trace", trace_path, "--pairs", "40",
                "--json", str(path),
            ]
        ) == 0
        capsys.readouterr()
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["geometry"] == "xor"
        assert payload["churn_trace"] == trace_path
        assert len(payload["rows"]) == 6
        assert all(row["effective_q"] is None for row in payload["rows"])

    def test_missing_trace_file_exits_2_with_one_line_error(self, tmp_path, capsys):
        assert main(
            [
                "simulate", "--geometry", "xor", "--d", "6",
                "--churn-trace", str(tmp_path / "absent.txt"),
            ]
        ) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err


class TestJsonExport:
    def _export(self, tmp_path, capsys, *extra):
        path = tmp_path / "out.json"
        assert main(
            [
                "simulate", "--geometry", "ring", "--d", "2",
                "--q", "0.97", "--pairs", "10", "--trials", "3",
                "--json", str(path), *extra,
            ]
        ) == 0
        capsys.readouterr()
        return path.read_text(encoding="utf-8")

    @pytest.mark.parametrize("extra", [(), ("--engine", "scalar")])
    def test_degenerate_sweep_exports_strict_json(self, tmp_path, capsys, extra):
        # Regression: at q=0.97 on a 4-node ring every trial is degenerate and
        # the routability is undefined; the export used to contain the literal
        # NaN, which jq/JSON.parse reject.
        import json

        text = self._export(tmp_path, capsys, *extra)
        assert "NaN" not in text

        def reject_constant(name):  # json.loads only calls this for NaN/Infinity
            raise AssertionError(f"non-finite constant {name} in JSON export")

        payload = json.loads(text, parse_constant=reject_constant)
        assert payload["rows"][0]["routability"] is None
        assert payload["rows"][0]["attempts"] == 0

    def test_export_records_the_failure_model(self, tmp_path, capsys):
        import json

        text = self._export(tmp_path, capsys, "--failure-model", "regional")
        assert json.loads(text)["failure_model"] == "regional"


class TestServeParser:
    def test_serve_defaults(self):
        arguments = build_parser().parse_args(["serve"])
        assert arguments.command == "serve"
        assert arguments.host == "127.0.0.1"
        assert arguments.port == 8642
        assert arguments.store == "rcm_sweeps.db"
        assert arguments.max_jobs == 2

    def test_dump_flags_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--dump-openapi", "--dump-api-markdown"])

    def test_dump_openapi_prints_the_document(self, capsys):
        import json

        assert main(["serve", "--dump-openapi"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["openapi"] == "3.0.3"
        assert "/v1/sweeps" in document["paths"]

    def test_dump_api_markdown_matches_the_generator(self, capsys):
        from repro.service.apidocs import generate_api_markdown
        from repro.service.routes import build_routes

        assert main(["serve", "--dump-api-markdown"]) == 0
        assert capsys.readouterr().out == generate_api_markdown(build_routes(None))


class TestResultStoreOption:
    def _simulate(self, store, *extra):
        return [
            "simulate", "--geometry", "ring", "--d", "6",
            "--q", "0.1", "--pairs", "20", "--trials", "1",
            "--store", str(store), *extra,
        ]

    def test_store_round_trip_reports_cache_hits(self, tmp_path, capsys):
        store = tmp_path / "cells.db"
        assert main(self._simulate(store)) == 0
        first = capsys.readouterr()
        assert "0 computed" not in first.err

        assert main(self._simulate(store)) == 0
        second = capsys.readouterr()
        assert "1 of 1 cells served" in second.err
        assert "(0 computed)" in second.err
        assert second.out == first.out  # bit-identical tables either way

    def test_unwritable_store_exits_2_with_one_line_error(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        assert main(self._simulate(blocker / "sub" / "cells.db")) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: cannot create result-store directory")
        assert "Traceback" not in captured.err

    def test_store_pointing_at_directory_exits_2(self, tmp_path, capsys):
        assert main(self._simulate(tmp_path)) == 2
        captured = capsys.readouterr()
        assert "is a directory" in captured.err

    def test_serve_with_unusable_store_exits_2(self, tmp_path, capsys):
        assert main(["serve", "--store", str(tmp_path)]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "is a directory" in captured.err


class TestAdaptiveOption:
    def _simulate(self, *extra):
        return [
            "simulate", "--geometry", "xor", "--d", "6",
            "--q", "0.1", "0.4", "0.9", "--pairs", "40", "--trials", "4",
            *extra,
        ]

    def test_parser_accepts_the_adaptive_flags(self):
        arguments = build_parser().parse_args(
            self._simulate(
                "--adaptive", "--ci-target", "0.05",
                "--min-trials", "3", "--max-trials", "8",
            )
        )
        assert arguments.adaptive is True
        assert arguments.ci_target == 0.05
        assert arguments.min_trials == 3
        assert arguments.max_trials == 8

    def test_adaptive_prints_the_allocation_table(self, capsys):
        assert main(self._simulate("--adaptive", "--ci-target", "0.08")) == 0
        captured = capsys.readouterr()
        assert "per-point trial allocation" in captured.out
        assert "frozen_by" in captured.out
        assert "[adaptive]" in captured.err

    def test_adaptive_requires_ci_target(self, capsys):
        assert main(self._simulate("--adaptive")) == 2
        assert "--ci-target" in capsys.readouterr().err

    def test_ci_target_requires_adaptive(self, capsys):
        assert main(self._simulate("--ci-target", "0.05")) == 2
        assert "--adaptive" in capsys.readouterr().err

    def test_adaptive_rejects_the_scalar_engine(self, capsys):
        assert main(
            self._simulate("--adaptive", "--ci-target", "0.05", "--engine", "scalar")
        ) == 2
        assert "batch engine" in capsys.readouterr().err

    def test_allocation_out_requires_adaptive_mode(self, capsys):
        assert main(self._simulate("--allocation-out", "ledger.txt")) == 2
        assert "--allocation-out requires" in capsys.readouterr().err

    def test_record_and_replay_round_trip_is_bit_identical(self, tmp_path, capsys):
        ledger_path = tmp_path / "allocation.txt"
        assert main(
            self._simulate(
                "--adaptive", "--ci-target", "0.08",
                "--allocation-out", str(ledger_path),
            )
        ) == 0
        recorded = capsys.readouterr()
        assert ledger_path.read_text(encoding="utf-8").startswith(
            "# rcm-adaptive-allocation v1"
        )
        assert main(
            self._simulate("--replay-allocation", str(ledger_path))
        ) == 0
        replayed = capsys.readouterr()
        # The measured-rows table is byte-identical; only the allocation
        # schedule's frozen_by column differs (every row reads "replay").
        measured = recorded.out.split("[adaptive]")[0]
        assert replayed.out.split("[adaptive]")[0] == measured
        assert replayed.out.count("replay") >= 3
        assert "[replayed]" in replayed.err

    def test_replay_rejects_adaptive_flags(self, tmp_path, capsys):
        ledger_path = tmp_path / "allocation.txt"
        main(
            self._simulate(
                "--adaptive", "--ci-target", "0.08",
                "--allocation-out", str(ledger_path),
            )
        )
        capsys.readouterr()
        assert main(
            self._simulate(
                "--replay-allocation", str(ledger_path), "--adaptive",
            )
        ) == 2
        assert "do not combine" in capsys.readouterr().err

    def test_missing_ledger_file_exits_2_with_one_line_error(self, tmp_path, capsys):
        assert main(
            self._simulate("--replay-allocation", str(tmp_path / "absent.txt"))
        ) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: cannot read allocation ledger")
        assert "Traceback" not in captured.err

    def test_json_export_records_the_allocation(self, tmp_path, capsys):
        import json

        path = tmp_path / "out.json"
        assert main(
            self._simulate(
                "--adaptive", "--ci-target", "0.08", "--json", str(path),
            )
        ) == 0
        capsys.readouterr()
        payload = json.loads(path.read_text(encoding="utf-8"))
        adaptive = payload["adaptive"]
        assert adaptive["replayed"] is False
        assert adaptive["ci_target"] == 0.08
        assert adaptive["max_trials"] == 4
        assert adaptive["trials_allocated"] + adaptive["trials_saved"] == 3 * 4
        assert len(adaptive["points"]) == 3
        assert all(point["frozen_by"] for point in adaptive["points"])


class TestBenchReportCommand:
    def _artifact(self, tmp_path, ratio):
        import json

        path = tmp_path / "BENCH_adaptive.json"
        path.write_text(
            json.dumps(
                {
                    "benchmark": "adaptive-trial-allocation",
                    "pairs_saved_ratio": ratio,
                    "ratio_floor": 2.0,
                }
            ),
            encoding="utf-8",
        )
        return str(path)

    def test_renders_the_trajectory_table(self, tmp_path, capsys):
        path = self._artifact(tmp_path, 2.5)
        assert main(["bench-report", path]) == 0
        output = capsys.readouterr().out
        assert "Performance trajectory" in output
        assert "pairs_saved_ratio" in output
        assert "pass" in output
        assert "0 failed" in output

    def test_check_fails_on_a_regressed_gate(self, tmp_path, capsys):
        path = self._artifact(tmp_path, 1.5)
        assert main(["bench-report", path]) == 0  # report-only: table, exit 0
        capsys.readouterr()
        assert main(["bench-report", path, "--check"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_json_summary_export(self, tmp_path, capsys):
        import json

        artifact = self._artifact(tmp_path, 2.5)
        summary_path = tmp_path / "trajectory.json"
        assert main(["bench-report", artifact, "--json", str(summary_path)]) == 0
        capsys.readouterr()
        summary = json.loads(summary_path.read_text(encoding="utf-8"))
        assert summary["report"] == "rcm-bench-trajectory"
        assert summary["all_pass"] is True
        assert summary["gates_total"] == 1

    def test_no_artifacts_anywhere_exits_2(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)  # empty directory: discovery finds nothing
        assert main(["bench-report"]) == 2
        assert "no benchmark artifacts" in capsys.readouterr().err

    def test_unreadable_artifact_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert main(["bench-report", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err
