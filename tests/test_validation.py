"""Unit tests for the shared input-validation helpers."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import InvalidParameterError
from repro.validation import (
    check_all_probabilities,
    check_failure_probability,
    check_fraction_open,
    check_hop_count,
    check_identifier_length,
    check_node_count,
    check_non_negative_int,
    check_positive_int,
    check_probability,
)


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0

    def test_accepts_interior_value(self):
        assert check_probability(0.25) == 0.25

    def test_returns_plain_float(self):
        assert isinstance(check_probability(0), float)

    @pytest.mark.parametrize("bad", [-0.01, 1.01, float("nan"), "half", None])
    def test_rejects_invalid(self, bad):
        with pytest.raises(InvalidParameterError):
            check_probability(bad)

    def test_error_message_mentions_name(self):
        with pytest.raises(InvalidParameterError, match="my prob"):
            check_probability(2.0, name="my prob")


class TestFailureProbability:
    def test_is_probability_check(self):
        assert check_failure_probability(0.3) == 0.3

    def test_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            check_failure_probability(-0.5)


class TestFractionOpen:
    def test_accepts_interior(self):
        assert check_fraction_open(0.5) == 0.5

    @pytest.mark.parametrize("bad", [0.0, 1.0])
    def test_rejects_boundaries(self, bad):
        with pytest.raises(InvalidParameterError):
            check_fraction_open(bad)


class TestPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(3) == 3

    def test_accepts_integral_float(self):
        assert check_positive_int(4.0) == 4

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "three"])
    def test_rejects_invalid(self, bad):
        with pytest.raises(InvalidParameterError):
            check_positive_int(bad)

    def test_non_negative_accepts_zero(self):
        assert check_non_negative_int(0) == 0

    def test_non_negative_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            check_non_negative_int(-3)


class TestIdentifierLength:
    def test_accepts_paper_sizes(self):
        assert check_identifier_length(16) == 16
        assert check_identifier_length(100) == 100

    def test_rejects_zero(self):
        with pytest.raises(InvalidParameterError):
            check_identifier_length(0)

    def test_rejects_unreasonably_large(self):
        with pytest.raises(InvalidParameterError):
            check_identifier_length(5000)


class TestHopCount:
    def test_accepts_within_range(self):
        assert check_hop_count(3, 8) == 3

    def test_accepts_equal_to_d(self):
        assert check_hop_count(8, 8) == 8

    def test_rejects_exceeding_d(self):
        with pytest.raises(InvalidParameterError):
            check_hop_count(9, 8)

    def test_rejects_zero(self):
        with pytest.raises(InvalidParameterError):
            check_hop_count(0, 8)


class TestNodeCount:
    def test_accepts_two(self):
        assert check_node_count(2) == 2

    def test_rejects_one(self):
        with pytest.raises(InvalidParameterError):
            check_node_count(1)


class TestAllProbabilities:
    def test_returns_floats(self):
        assert check_all_probabilities([0, 0.5, 1]) == [0.0, 0.5, 1.0]

    def test_rejects_any_invalid(self):
        with pytest.raises(InvalidParameterError):
            check_all_probabilities([0.5, 1.5])
