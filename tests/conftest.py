"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dht import OVERLAY_CLASSES

#: Identifier length shared by the per-geometry fixtures (64-node overlays).
SMALL_D = 6

#: Every registered overlay geometry, in registration order (the paper's five
#: plus extensions such as debruijn).  Auto-discovered so new geometries get
#: the whole parametrised suite for free.
ALL_GEOMETRIES = tuple(OVERLAY_CLASSES)


@pytest.fixture
def rng():
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_overlays():
    """One small (d=6, 64-node) overlay per registered geometry, built once per session."""
    seed = 2006
    return {
        geometry: cls.build(SMALL_D, seed=seed)
        for geometry, cls in OVERLAY_CLASSES.items()
    }


@pytest.fixture(params=ALL_GEOMETRIES)
def geometry_name(request):
    """Parametrised fixture yielding each registered overlay geometry label."""
    return request.param
