"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dht import (
    ChordOverlay,
    HypercubeOverlay,
    KademliaOverlay,
    PlaxtonOverlay,
    SymphonyOverlay,
)

#: Geometry label -> overlay class, small enough to build in every test.
SMALL_D = 6


@pytest.fixture
def rng():
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_overlays():
    """One small (d=6, 64-node) overlay per geometry, built once per session."""
    seed = 2006
    return {
        "tree": PlaxtonOverlay.build(SMALL_D, seed=seed),
        "hypercube": HypercubeOverlay.build(SMALL_D),
        "xor": KademliaOverlay.build(SMALL_D, seed=seed),
        "ring": ChordOverlay.build(SMALL_D, seed=seed),
        "smallworld": SymphonyOverlay.build(SMALL_D, seed=seed),
    }


@pytest.fixture(params=["tree", "hypercube", "xor", "ring", "smallworld"])
def geometry_name(request):
    """Parametrised fixture yielding each paper geometry label."""
    return request.param
