"""Tests for the experiment harnesses: every paper figure regenerates and its
headline *shape* claims hold on the regenerated data."""

from __future__ import annotations

import math

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentConfig,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.exceptions import ExperimentError
from repro.workloads.generators import PairWorkload


@pytest.fixture(scope="module")
def fast_config():
    """A configuration small enough for the whole experiment matrix to run in tests."""
    return ExperimentConfig(fast=True, workload=PairWorkload(pairs=250, trials=2, seed=99))


@pytest.fixture(scope="module")
def results(fast_config):
    """Run every registered experiment once (module-scoped: they are reused across tests)."""
    return {experiment_id: run_experiment(experiment_id, fast_config) for experiment_id in EXPERIMENTS}


class TestRegistry:
    def test_expected_experiments_are_registered(self):
        assert {"FIG1-3", "FIG6A", "FIG6B", "FIG7A", "FIG7B", "TAB-SCAL"} <= set(EXPERIMENTS)

    def test_list_experiments_matches_registry(self):
        listed = {entry[0] for entry in list_experiments()}
        assert listed == set(EXPERIMENTS)

    def test_lookup_is_case_insensitive(self):
        assert get_experiment("fig6a").experiment_id == "FIG6A"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            get_experiment("FIG99")


class TestResultPlumbing:
    def test_every_experiment_produces_tables_and_metadata(self, results):
        for experiment_id, result in results.items():
            assert result.experiment_id == experiment_id
            assert result.title
            assert result.paper_reference
            assert result.tables
            for rows in result.tables.values():
                assert rows, f"{experiment_id} produced an empty table"
                keys = set(rows[0])
                assert all(set(row) == keys for row in rows)

    def test_render_includes_every_table_name(self, results):
        for result in results.values():
            text = result.render()
            for name in result.tables:
                assert name in text

    def test_missing_table_lookup_raises(self, results):
        with pytest.raises(ExperimentError):
            results["FIG7A"].table("no-such-table")

    def test_csv_export(self, results):
        csv_text = results["FIG7B"].to_csv("fig7b_routability_percent")
        assert csv_text.splitlines()[0].startswith("n_nodes")


class TestFig123:
    def test_distance_table_matches_figure_three(self, results):
        rows = results["FIG1-3"].table("figure3_distance_table")
        assert [row["n_h"] for row in rows] == [3, 3, 1]

    def test_all_routability_computations_agree(self, results):
        for row in results["FIG1-3"].table("routability_validation"):
            assert row["p3_closed_form"] == pytest.approx(row["p3_markov_chain"], abs=1e-9)
            # The exact-denominator RCM value matches the full enumeration very tightly;
            # the paper's (1-q)N - 1 approximation is loose at this 8-node toy size.
            assert row["routability_exact_denominator"] == pytest.approx(
                row["routability_exact_definition"], abs=0.02
            )
            assert row["routability_rcm"] == pytest.approx(
                row["routability_exact_definition"], abs=0.2
            )
            # The Monte-Carlo estimate averages per-pattern ratios (equal pairs per
            # pattern) while Definition 1 is a ratio of expectations, so allow a
            # slightly wider band on top of sampling noise.
            assert row["routability_simulated"] == pytest.approx(
                row["routability_exact_definition"], abs=0.15
            )


class TestFig6a:
    def test_columns_present(self, results):
        rows = results["FIG6A"].table("fig6a_failed_path_percent")
        expected_columns = {
            "q",
            "tree_analytical",
            "tree_simulated",
            "hypercube_analytical",
            "hypercube_simulated",
            "xor_analytical",
            "xor_simulated",
        }
        assert set(rows[0]) == expected_columns

    def test_zero_failure_row_is_all_zero(self, results):
        first = results["FIG6A"].table("fig6a_failed_path_percent")[0]
        assert first["q"] == 0.0
        assert all(value == pytest.approx(0.0) for key, value in first.items() if key != "q")

    def test_paper_ordering_tree_worst_hypercube_best(self, results):
        for row in results["FIG6A"].table("fig6a_failed_path_percent"):
            if row["q"] >= 0.15:
                assert row["tree_analytical"] > row["xor_analytical"] > row["hypercube_analytical"]
                assert row["tree_simulated"] >= row["hypercube_simulated"]

    def test_curves_increase_with_failure_probability(self, results):
        rows = results["FIG6A"].table("fig6a_failed_path_percent")
        analytical = [row["hypercube_analytical"] for row in rows]
        assert analytical == sorted(analytical)


class TestFig6b:
    def test_analytical_curve_is_an_upper_bound_in_the_practical_region(self, results):
        for row in results["FIG6B"].table("fig6b_failed_path_percent"):
            if 0.0 < row["q"] <= 0.2:
                assert row["ring_analytical_upper_bound"] >= row["ring_simulated"] - 6.0

    def test_gap_column_is_consistent(self, results):
        for row in results["FIG6B"].table("fig6b_failed_path_percent"):
            assert row["bound_gap"] == pytest.approx(
                row["ring_analytical_upper_bound"] - row["ring_simulated"]
            )


class TestFig7a:
    def test_unscalable_geometries_collapse_at_asymptotic_size(self, results):
        for row in results["FIG7A"].table("fig7a_failed_path_percent"):
            if row["q"] >= 0.15:
                assert row["tree"] > 99.0
                assert row["smallworld"] > 99.0

    def test_scalable_geometries_stay_close_to_reference_size(self, results):
        drift = {
            row["geometry"]: row["max_abs_change_vs_2^16"]
            for row in results["FIG7A"].table("drift_vs_reference_size")
        }
        # The scalable geometries move by at most a few points between N = 2^16 and
        # N = 2^100 (the worst case sits around q ≈ 0.8); the tree collapses.
        assert drift["hypercube"] < 10.0
        assert drift["xor"] < 12.0
        assert drift["ring"] < 12.0
        assert drift["tree"] > 20.0


class TestFig7b:
    def test_summary_classification(self, results):
        summary = {row["geometry"]: row for row in results["FIG7B"].table("scaling_summary")}
        assert summary["tree"]["monotonically_degrading"]
        assert summary["smallworld"]["monotonically_degrading"]
        for geometry in ("hypercube", "xor", "ring"):
            assert summary[geometry]["routability_at_largest_n"] > 90.0

    def test_tree_routability_decays_with_size(self, results):
        rows = results["FIG7B"].table("fig7b_routability_percent")
        tree = [row["tree"] for row in rows]
        assert tree[0] > tree[-1]
        # By a few billion nodes the tree has lost most of its routability at q = 0.1
        # (it keeps sliding towards zero beyond the plotted range).
        assert tree[-1] < 30.0


class TestScalabilityTable:
    def test_classification_matches_the_paper(self, results):
        verdicts = {
            row["geometry"]: row["scalable"]
            for row in results["TAB-SCAL"].table("scalability_classification")
        }
        assert verdicts == {
            "tree": False,
            "hypercube": True,
            "xor": True,
            "ring": True,
            "smallworld": False,
        }

    def test_numerics_are_consistent_for_every_row(self, results):
        assert all(
            row["numerics_consistent"]
            for row in results["TAB-SCAL"].table("scalability_classification")
        )


class TestExtensions:
    def test_symphony_sensitivity_increases_with_degree(self, results):
        rows = results["EXT-SYM"].table("symphony_sensitivity")
        sparse = next(row for row in rows if row["kn"] == 1 and row["ks"] == 1)
        dense = next(row for row in rows if row["kn"] == 4 and row["ks"] == 4)
        assert dense["routability_d20"] > sparse["routability_d20"]

    def test_xor_gain_over_tree_is_positive_and_grows_with_size(self, results):
        d16 = results["EXT-XOR-TREE"].table("ablation_d16")
        d100 = results["EXT-XOR-TREE"].table("ablation_d100")
        for row16, row100 in zip(d16, d100):
            if row16["q"] > 0.0:
                assert row16["xor_gain_over_tree"] > 0.0
            # In the regime where both systems still deliver a useful fraction of
            # messages, the fallback's advantage widens with system size.
            if 0.0 < row16["q"] <= 0.45:
                assert row100["xor_gain_over_tree"] >= row16["xor_gain_over_tree"] - 1e-6

    def test_percolation_gap_is_larger_for_tree_than_xor(self, results):
        rows = results["EXT-PERC"].table("percolation_vs_routability")
        tree_gaps = [r["connectivity_minus_routability"] for r in rows if r["geometry"] == "tree"]
        xor_gaps = [r["connectivity_minus_routability"] for r in rows if r["geometry"] == "xor"]
        assert sum(tree_gaps) / len(tree_gaps) > sum(xor_gaps) / len(xor_gaps)


class TestConfigScaling:
    def test_fast_mode_uses_smaller_overlays(self):
        config = ExperimentConfig(fast=True)
        assert config.resolved_simulation_d(full_default=16, fast_default=10) == 10

    def test_explicit_simulation_d_wins(self):
        config = ExperimentConfig(fast=True, simulation_d=12)
        assert config.resolved_simulation_d(full_default=16, fast_default=10) == 12

    def test_fast_mode_scales_down_the_workload(self):
        config = ExperimentConfig(fast=True, workload=PairWorkload(pairs=1000, trials=2))
        assert config.resolved_workload().pairs < 1000
        full = ExperimentConfig(fast=False, workload=PairWorkload(pairs=1000, trials=2))
        assert full.resolved_workload().pairs == 1000


class TestFailureModes:
    def test_registered_and_listed(self):
        assert "EXT-FAILMODES" in EXPERIMENTS
        assert get_experiment("ext-failmodes").experiment_id == "EXT-FAILMODES"

    def test_one_table_per_model_plus_summary(self, results):
        result = results["EXT-FAILMODES"]
        assert set(result.tables) == {
            "failed_path_percent_uniform",
            "failed_path_percent_targeted",
            "failed_path_percent_regional",
            "model_comparison_at_reference_severity",
        }
        from repro.experiments.failure_modes import FAILMODE_GEOMETRIES

        for name in ("uniform", "targeted", "regional"):
            rows = result.table(f"failed_path_percent_{name}")
            assert set(rows[0]) == {"severity", *FAILMODE_GEOMETRIES}

    def test_no_failures_means_no_failed_paths_under_every_model(self, results):
        from repro.experiments.failure_modes import FAILMODE_GEOMETRIES

        for name in ("uniform", "targeted", "regional"):
            row = results["EXT-FAILMODES"].table(f"failed_path_percent_{name}")[0]
            assert row["severity"] == 0.0
            for geometry in FAILMODE_GEOMETRIES:
                assert row[geometry] == pytest.approx(0.0)

    def test_values_are_percentages_or_missing(self, results):
        from repro.experiments.failure_modes import FAILMODE_GEOMETRIES

        for name in ("uniform", "targeted", "regional"):
            for row in results["EXT-FAILMODES"].table(f"failed_path_percent_{name}"):
                for geometry in FAILMODE_GEOMETRIES:
                    value = row[geometry]
                    assert value is None or (
                        0.0 <= value <= 100.0 and not math.isnan(value)
                    )

    def test_uniform_table_matches_direct_sweep_runner(self, results, fast_config):
        # The experiment's uniform column is the ordinary SweepRunner sweep:
        # same seeds, same engine, so the numbers must agree exactly.
        from repro.experiments.failure_modes import FAST_D
        from repro.sim.engine import SweepRunner

        workload = fast_config.resolved_workload()
        result = results["EXT-FAILMODES"]
        severities = list(result.parameters["severities"])
        with SweepRunner(
            pairs=workload.pairs,
            replicates=workload.trials,
            base_seed=workload.derived_seed("failmodes"),
        ) as runner:
            sweep = runner.sweep("xor", FAST_D, severities, failure_model="uniform")
        expected = [
            100.0 * r.metrics.failed_path_fraction_or_none if r.metrics.measured else None
            for r in sweep.results
        ]
        observed = [row["xor"] for row in result.table("failed_path_percent_uniform")]
        assert observed == expected
