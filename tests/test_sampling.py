"""Tests for survivor-pair sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.sim.sampling import (
    all_survivor_pairs,
    sample_survivor_pair_arrays,
    sample_survivor_pairs,
)


class TestSampleSurvivorPairs:
    def test_pairs_are_distinct_and_alive(self, rng):
        alive = np.zeros(64, dtype=bool)
        alive[[1, 5, 9, 30, 63]] = True
        pairs = sample_survivor_pairs(alive, 200, rng)
        assert len(pairs) == 200
        for source, destination in pairs:
            assert source != destination
            assert alive[source] and alive[destination]

    def test_two_survivors_always_give_the_same_pair(self, rng):
        alive = np.zeros(16, dtype=bool)
        alive[[3, 12]] = True
        pairs = sample_survivor_pairs(alive, 20, rng)
        assert set(pairs) <= {(3, 12), (12, 3)}

    def test_fewer_than_two_survivors_rejected(self, rng):
        alive = np.zeros(16, dtype=bool)
        alive[3] = True
        with pytest.raises(InvalidParameterError):
            sample_survivor_pairs(alive, 5, rng)

    def test_zero_count_rejected(self, rng):
        with pytest.raises(InvalidParameterError):
            sample_survivor_pairs(np.ones(8, dtype=bool), 0, rng)

    def test_sampling_is_roughly_uniform(self, rng):
        alive = np.ones(8, dtype=bool)
        pairs = sample_survivor_pairs(alive, 8000, rng)
        sources = np.array([s for s, _ in pairs])
        counts = np.bincount(sources, minlength=8)
        assert counts.min() > 0.7 * counts.mean()


class TestSampleSurvivorPairArrays:
    """The array variant is stream-identical to the list API by construction."""

    @pytest.mark.parametrize("survivor_count", [2, 3, 17, 64])
    def test_stream_identical_to_list_variant(self, survivor_count):
        # Few survivors force the scalar redraw loop, many make it rare; the
        # two variants must draw identically either way.
        alive = np.zeros(64, dtype=bool)
        alive[np.linspace(0, 63, survivor_count).astype(int)] = True
        rng_arrays = np.random.default_rng(414)
        rng_list = np.random.default_rng(414)
        sources, destinations = sample_survivor_pair_arrays(alive, 400, rng_arrays)
        pairs = sample_survivor_pairs(alive, 400, rng_list)
        assert list(zip(sources.tolist(), destinations.tolist())) == pairs
        # Both consumed the random stream draw for draw: the generators are
        # in the same state, so any downstream sampling stays aligned.
        assert rng_arrays.bit_generator.state == rng_list.bit_generator.state

    def test_returns_int64_arrays(self, rng):
        sources, destinations = sample_survivor_pair_arrays(np.ones(16, dtype=bool), 30, rng)
        assert sources.dtype == np.int64 and destinations.dtype == np.int64
        assert sources.shape == destinations.shape == (30,)

    def test_pairs_are_distinct_and_alive(self, rng):
        alive = np.zeros(32, dtype=bool)
        alive[[0, 7, 21, 30]] = True
        sources, destinations = sample_survivor_pair_arrays(alive, 200, rng)
        assert (sources != destinations).all()
        assert alive[sources].all() and alive[destinations].all()

    def test_fewer_than_two_survivors_rejected(self, rng):
        with pytest.raises(InvalidParameterError):
            sample_survivor_pair_arrays(np.zeros(8, dtype=bool), 5, rng)


class TestAllSurvivorPairs:
    def test_enumerates_ordered_pairs(self):
        alive = np.array([True, False, True, True])
        pairs = all_survivor_pairs(alive)
        assert set(pairs) == {(0, 2), (0, 3), (2, 0), (2, 3), (3, 0), (3, 2)}

    def test_limit_guard(self):
        alive = np.ones(2000, dtype=bool)
        with pytest.raises(InvalidParameterError):
            all_survivor_pairs(alive, limit=1000)
