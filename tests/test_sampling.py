"""Tests for survivor-pair sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.sim.sampling import all_survivor_pairs, sample_survivor_pairs


class TestSampleSurvivorPairs:
    def test_pairs_are_distinct_and_alive(self, rng):
        alive = np.zeros(64, dtype=bool)
        alive[[1, 5, 9, 30, 63]] = True
        pairs = sample_survivor_pairs(alive, 200, rng)
        assert len(pairs) == 200
        for source, destination in pairs:
            assert source != destination
            assert alive[source] and alive[destination]

    def test_two_survivors_always_give_the_same_pair(self, rng):
        alive = np.zeros(16, dtype=bool)
        alive[[3, 12]] = True
        pairs = sample_survivor_pairs(alive, 20, rng)
        assert set(pairs) <= {(3, 12), (12, 3)}

    def test_fewer_than_two_survivors_rejected(self, rng):
        alive = np.zeros(16, dtype=bool)
        alive[3] = True
        with pytest.raises(InvalidParameterError):
            sample_survivor_pairs(alive, 5, rng)

    def test_zero_count_rejected(self, rng):
        with pytest.raises(InvalidParameterError):
            sample_survivor_pairs(np.ones(8, dtype=bool), 0, rng)

    def test_sampling_is_roughly_uniform(self, rng):
        alive = np.ones(8, dtype=bool)
        pairs = sample_survivor_pairs(alive, 8000, rng)
        sources = np.array([s for s, _ in pairs])
        counts = np.bincount(sources, minlength=8)
        assert counts.min() > 0.7 * counts.mean()


class TestAllSurvivorPairs:
    def test_enumerates_ordered_pairs(self):
        alive = np.array([True, False, True, True])
        pairs = all_survivor_pairs(alive)
        assert set(pairs) == {(0, 2), (0, 3), (2, 0), (2, 3), (3, 0), (3, 2)}

    def test_limit_guard(self):
        alive = np.ones(2000, dtype=bool)
        with pytest.raises(InvalidParameterError):
            all_survivor_pairs(alive, limit=1000)
