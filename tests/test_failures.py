"""Tests for the failure models used by the static-resilience simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dht.failures import (
    FAILURE_MODEL_KINDS,
    CompositeFailure,
    DegreeTargetedFailure,
    PrefixSubtreeFailure,
    RegionalFailure,
    TargetedNodeFailure,
    UniformNodeFailure,
    check_failure_model_kind,
    in_degree_ranking_from_table,
    make_failure_model,
    survival_mask,
    surviving_identifiers,
)
from repro.exceptions import InvalidParameterError


class TestSurvivalMask:
    def test_zero_failure_keeps_everyone(self, rng):
        mask = survival_mask(100, 0.0, rng)
        assert mask.all()

    def test_certain_failure_kills_everyone(self, rng):
        mask = survival_mask(100, 1.0, rng)
        assert not mask.any()

    def test_survival_rate_is_close_to_expectation(self, rng):
        q = 0.3
        mask = survival_mask(20000, q, rng)
        assert mask.mean() == pytest.approx(1.0 - q, abs=0.02)

    def test_rejects_invalid_probability(self, rng):
        with pytest.raises(InvalidParameterError):
            survival_mask(10, 1.5, rng)

    def test_rejects_tiny_population(self, rng):
        with pytest.raises(InvalidParameterError):
            survival_mask(1, 0.5, rng)

    def test_surviving_identifiers(self):
        mask = np.array([True, False, True, True, False])
        assert list(surviving_identifiers(mask)) == [0, 2, 3]


class TestUniformNodeFailure:
    def test_sample_shape_and_dtype(self, rng):
        model = UniformNodeFailure(0.25)
        mask = model.sample(64, rng)
        assert mask.shape == (64,)
        assert mask.dtype == np.bool_

    def test_description_mentions_q(self):
        assert "0.25" in UniformNodeFailure(0.25).description

    def test_rejects_invalid_q(self):
        with pytest.raises(InvalidParameterError):
            UniformNodeFailure(-0.1)


class TestTargetedNodeFailure:
    def test_fails_top_ranked_nodes(self, rng):
        ranking = list(range(10))  # nodes 0..9 ranked most to least important
        model = TargetedNodeFailure(fraction=0.3, ranking=ranking)
        mask = model.sample(10, rng)
        assert not mask[0] and not mask[1] and not mask[2]
        assert mask[3:].all()

    def test_zero_fraction_keeps_everyone(self, rng):
        model = TargetedNodeFailure(fraction=0.0, ranking=list(range(10)))
        assert model.sample(10, rng).all()

    def test_rejects_mismatched_ranking_length(self, rng):
        model = TargetedNodeFailure(fraction=0.5, ranking=[0, 1, 2])
        with pytest.raises(InvalidParameterError):
            model.sample(10, rng)

    def test_rejects_invalid_ranking_entries(self, rng):
        model = TargetedNodeFailure(fraction=1.0, ranking=[0, 99])
        with pytest.raises(InvalidParameterError):
            model.sample(2, rng)

    def test_rejects_empty_ranking(self):
        with pytest.raises(InvalidParameterError):
            TargetedNodeFailure(fraction=0.5, ranking=[])


class TestRegionalFailure:
    def test_fails_a_contiguous_fraction(self, rng):
        model = RegionalFailure(fraction=0.25)
        mask = model.sample(64, rng)
        assert int((~mask).sum()) == 16

    def test_failed_region_is_contiguous_on_the_ring(self, rng):
        model = RegionalFailure(fraction=0.25)
        mask = model.sample(64, rng)
        failed = np.flatnonzero(~mask)
        # On a ring, a contiguous block either has consecutive indices or wraps around.
        gaps = np.diff(failed)
        assert (gaps == 1).sum() >= len(failed) - 2

    def test_zero_fraction_keeps_everyone(self, rng):
        model = RegionalFailure(fraction=0.0)
        assert model.sample(32, rng).all()

    def test_description_mentions_region(self):
        assert "contiguous" in RegionalFailure(fraction=0.1).description


def legacy_targeted_sample(fraction, ranking, n_nodes):
    """The pre-vectorization per-entry loop of TargetedNodeFailure.sample,
    kept verbatim as the reference the fancy-indexing rewrite must match."""
    mask = np.ones(n_nodes, dtype=bool)
    to_fail = int(round(fraction * n_nodes))
    for identifier in list(ranking)[:to_fail]:
        mask[identifier] = False
    return mask


class TestTargetedVectorization:
    """The vectorized sample is mask-identical to the old per-entry loop."""

    @pytest.mark.parametrize("fraction", [0.0, 0.1, 0.33, 0.5, 0.99, 1.0])
    def test_matches_legacy_loop(self, fraction):
        for seed in range(5):
            ranking = np.random.default_rng(seed).permutation(64)
            model = TargetedNodeFailure(fraction=fraction, ranking=ranking)
            expected = legacy_targeted_sample(fraction, ranking, 64)
            assert np.array_equal(
                model.sample(64, np.random.default_rng(0)), expected
            ), (fraction, seed)

    def test_ranking_validated_once_at_construction(self):
        with pytest.raises(InvalidParameterError):
            TargetedNodeFailure(fraction=0.5, ranking=[0, -1, 2])
        with pytest.raises(InvalidParameterError):
            TargetedNodeFailure(fraction=0.5, ranking=[0, 1, 1])
        with pytest.raises(InvalidParameterError):
            TargetedNodeFailure(fraction=0.5, ranking=["a", "b"])

    def test_equal_models_hash_equal(self):
        a = TargetedNodeFailure(fraction=0.5, ranking=np.array([2, 0, 1]))
        b = TargetedNodeFailure(fraction=0.5, ranking=[2, 0, 1])
        assert a == b
        assert hash(a) == hash(b)

    def test_sample_consumes_no_randomness(self, rng):
        model = TargetedNodeFailure(fraction=0.5, ranking=list(range(16)))
        before = rng.bit_generator.state
        model.sample(16, rng)
        assert rng.bit_generator.state == before


class TestPrefixSubtreeFailure:
    def test_fails_one_aligned_power_of_two_block(self, rng):
        model = PrefixSubtreeFailure(fraction=0.25)
        mask = model.sample(64, rng)
        failed = np.flatnonzero(~mask)
        assert failed.size == 16
        assert failed[0] % 16 == 0  # aligned to its own size -> a subtree
        assert np.array_equal(failed, np.arange(failed[0], failed[0] + 16))

    def test_zero_fraction_keeps_everyone_and_draws_nothing(self, rng):
        model = PrefixSubtreeFailure(fraction=0.0)
        before = rng.bit_generator.state
        assert model.sample(64, rng).all()
        assert rng.bit_generator.state == before

    def test_full_fraction_kills_everyone(self, rng):
        assert not PrefixSubtreeFailure(fraction=1.0).sample(64, rng).any()

    def test_description_mentions_subtree(self):
        assert "subtree" in PrefixSubtreeFailure(fraction=0.2).description


class TestDegreeTargetedFailure:
    def test_bind_targets_highest_in_degree_nodes(self, small_overlays):
        overlay = small_overlays["smallworld"]
        model = DegreeTargetedFailure(fraction=0.25).bind(overlay)
        assert isinstance(model, TargetedNodeFailure)
        mask = model.sample(overlay.n_nodes, np.random.default_rng(0))
        in_degrees = np.bincount(
            overlay.neighbor_array().ravel(), minlength=overlay.n_nodes
        )
        # Every failed node has in-degree >= every surviving node's in-degree.
        assert in_degrees[~mask].min() >= in_degrees[mask].max()
        assert int((~mask).sum()) == round(0.25 * overlay.n_nodes)

    def test_sample_without_bind_is_rejected(self, rng):
        with pytest.raises(InvalidParameterError):
            DegreeTargetedFailure(fraction=0.2).sample(64, rng)

    def test_description_mentions_in_degree(self):
        assert "in-degree" in DegreeTargetedFailure(fraction=0.2).description


class TestInDegreeRanking:
    def test_ranking_is_sorted_by_in_degree_with_id_tiebreak(self):
        table = np.array([[1], [0], [1], [1]])  # in-degrees: 1, 3, 0, 0
        ranking = in_degree_ranking_from_table(table, 4)
        assert list(ranking) == [1, 0, 2, 3]

    def test_overlay_method_is_cached_and_read_only(self, small_overlays, geometry_name):
        overlay = small_overlays[geometry_name]
        ranking = overlay.in_degree_ranking()
        assert ranking is overlay.in_degree_ranking()
        assert sorted(ranking.tolist()) == list(range(overlay.n_nodes))
        with pytest.raises(ValueError):
            ranking[0] = 0


class TestCompositeFailure:
    def test_node_survives_only_if_it_survives_every_component(self, rng):
        composite = CompositeFailure(
            (UniformNodeFailure(0.3), RegionalFailure(0.25))
        )
        mask = composite.sample(64, rng)
        replay = np.random.default_rng(12345)
        expected = UniformNodeFailure(0.3).sample(64, replay)
        expected &= RegionalFailure(0.25).sample(64, replay)
        assert np.array_equal(mask, expected)

    def test_empty_composite_rejected(self):
        with pytest.raises(InvalidParameterError):
            CompositeFailure(())

    def test_non_model_component_rejected(self):
        with pytest.raises(InvalidParameterError):
            CompositeFailure((UniformNodeFailure(0.1), "regional"))

    def test_description_joins_components(self):
        description = CompositeFailure(
            (UniformNodeFailure(0.1), RegionalFailure(0.2))
        ).description
        assert "uniform" in description and "regional" in description


class TestModelRegistry:
    def test_every_kind_instantiates(self):
        for kind in FAILURE_MODEL_KINDS:
            model = make_failure_model(kind, 0.3)
            assert model.description

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError):
            check_failure_model_kind("meteor")
        with pytest.raises(InvalidParameterError):
            make_failure_model("meteor", 0.3)

    def test_invalid_severity_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_failure_model("regional", 1.5)

    def test_composite_kind_splits_severity(self):
        model = make_failure_model("uniform+regional", 0.4)
        assert isinstance(model, CompositeFailure)
        assert model.models[0].q == pytest.approx(0.2)
        assert model.models[1].fraction == pytest.approx(0.2)


class TestSampleBatchStreamIdentity:
    """sample_batch must equal — and consume the stream identically to —
    per-trial sample calls: the mask-generation copy of the routing
    invariant."""

    MODELS = [
        UniformNodeFailure(0.0),
        UniformNodeFailure(0.37),
        UniformNodeFailure(1.0),
        TargetedNodeFailure(fraction=0.3, ranking=list(range(64))),
        RegionalFailure(0.0),
        RegionalFailure(0.28),
        RegionalFailure(1.0),
        PrefixSubtreeFailure(0.0),
        PrefixSubtreeFailure(0.25),
        PrefixSubtreeFailure(1.0),
        CompositeFailure((UniformNodeFailure(0.2), RegionalFailure(0.15))),
        make_failure_model("uniform+regional", 0.5),
    ]

    @pytest.mark.parametrize(
        "model", MODELS, ids=[type(m).__name__ + "-" + m.description for m in MODELS]
    )
    @pytest.mark.parametrize("trials", [1, 2, 7])
    def test_batch_equals_scalar_loop(self, model, trials):
        batch = model.sample_batch(64, trials, np.random.default_rng(99))
        loop_rng = np.random.default_rng(99)
        loop = np.stack([model.sample(64, loop_rng) for _ in range(trials)])
        assert batch.shape == (trials, 64)
        assert batch.dtype == np.bool_
        assert np.array_equal(batch, loop)

    @pytest.mark.parametrize(
        "model", MODELS, ids=[type(m).__name__ + "-" + m.description for m in MODELS]
    )
    def test_batch_leaves_stream_where_the_loop_would(self, model):
        batch_rng = np.random.default_rng(5)
        model.sample_batch(64, 3, batch_rng)
        loop_rng = np.random.default_rng(5)
        for _ in range(3):
            model.sample(64, loop_rng)
        # Subsequent draws must agree, so mask generation and pair sampling
        # interleave identically on the vectorized and scalar paths.
        assert np.array_equal(batch_rng.random(8), loop_rng.random(8))

    def test_zero_trials_rejected(self):
        with pytest.raises(InvalidParameterError):
            UniformNodeFailure(0.5).sample_batch(64, 0, np.random.default_rng(1))
