"""Tests for the failure models used by the static-resilience simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dht.failures import (
    RegionalFailure,
    TargetedNodeFailure,
    UniformNodeFailure,
    survival_mask,
    surviving_identifiers,
)
from repro.exceptions import InvalidParameterError


class TestSurvivalMask:
    def test_zero_failure_keeps_everyone(self, rng):
        mask = survival_mask(100, 0.0, rng)
        assert mask.all()

    def test_certain_failure_kills_everyone(self, rng):
        mask = survival_mask(100, 1.0, rng)
        assert not mask.any()

    def test_survival_rate_is_close_to_expectation(self, rng):
        q = 0.3
        mask = survival_mask(20000, q, rng)
        assert mask.mean() == pytest.approx(1.0 - q, abs=0.02)

    def test_rejects_invalid_probability(self, rng):
        with pytest.raises(InvalidParameterError):
            survival_mask(10, 1.5, rng)

    def test_rejects_tiny_population(self, rng):
        with pytest.raises(InvalidParameterError):
            survival_mask(1, 0.5, rng)

    def test_surviving_identifiers(self):
        mask = np.array([True, False, True, True, False])
        assert list(surviving_identifiers(mask)) == [0, 2, 3]


class TestUniformNodeFailure:
    def test_sample_shape_and_dtype(self, rng):
        model = UniformNodeFailure(0.25)
        mask = model.sample(64, rng)
        assert mask.shape == (64,)
        assert mask.dtype == np.bool_

    def test_description_mentions_q(self):
        assert "0.25" in UniformNodeFailure(0.25).description

    def test_rejects_invalid_q(self):
        with pytest.raises(InvalidParameterError):
            UniformNodeFailure(-0.1)


class TestTargetedNodeFailure:
    def test_fails_top_ranked_nodes(self, rng):
        ranking = list(range(10))  # nodes 0..9 ranked most to least important
        model = TargetedNodeFailure(fraction=0.3, ranking=ranking)
        mask = model.sample(10, rng)
        assert not mask[0] and not mask[1] and not mask[2]
        assert mask[3:].all()

    def test_zero_fraction_keeps_everyone(self, rng):
        model = TargetedNodeFailure(fraction=0.0, ranking=list(range(10)))
        assert model.sample(10, rng).all()

    def test_rejects_mismatched_ranking_length(self, rng):
        model = TargetedNodeFailure(fraction=0.5, ranking=[0, 1, 2])
        with pytest.raises(InvalidParameterError):
            model.sample(10, rng)

    def test_rejects_invalid_ranking_entries(self, rng):
        model = TargetedNodeFailure(fraction=1.0, ranking=[0, 99])
        with pytest.raises(InvalidParameterError):
            model.sample(2, rng)

    def test_rejects_empty_ranking(self):
        with pytest.raises(InvalidParameterError):
            TargetedNodeFailure(fraction=0.5, ranking=[])


class TestRegionalFailure:
    def test_fails_a_contiguous_fraction(self, rng):
        model = RegionalFailure(fraction=0.25)
        mask = model.sample(64, rng)
        assert int((~mask).sum()) == 16

    def test_failed_region_is_contiguous_on_the_ring(self, rng):
        model = RegionalFailure(fraction=0.25)
        mask = model.sample(64, rng)
        failed = np.flatnonzero(~mask)
        # On a ring, a contiguous block either has consecutive indices or wraps around.
        gaps = np.diff(failed)
        assert (gaps == 1).sum() >= len(failed) - 2

    def test_zero_fraction_keeps_everyone(self, rng):
        model = RegionalFailure(fraction=0.0)
        assert model.sample(32, rng).all()

    def test_description_mentions_region(self):
        assert "contiguous" in RegionalFailure(fraction=0.1).description
