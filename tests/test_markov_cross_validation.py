"""Cross-validation: the closed-form Q(m)/p(h, q) expressions used by the analytical
core must agree with absorption probabilities computed from the explicitly
constructed Markov chains of the paper's figures.

This is the reproduction's main defence against a transcription error in any
of the paper's equations: the two computations share no code beyond the
probability parameters.
"""

from __future__ import annotations

import math

import pytest

from repro.core.geometry import get_geometry
from repro.markov import (
    hypercube_routing_chain,
    phase_success_probability,
    ring_routing_chain,
    routing_success_probability,
    symphony_routing_chain,
    tree_routing_chain,
    xor_routing_chain,
)

FAILURE_PROBABILITIES = (0.05, 0.2, 0.5, 0.8)
DISTANCES = (1, 2, 4, 6)


def closed_form_path_success(geometry_name: str, h: int, q: float, d: int) -> float:
    """p(h, q) assembled from the geometry's closed-form Q(m) values."""
    geometry = get_geometry(geometry_name)
    return math.prod(1.0 - geometry.phase_failure_probability(m, q, d) for m in range(1, h + 1))


@pytest.mark.parametrize("q", FAILURE_PROBABILITIES)
@pytest.mark.parametrize("h", DISTANCES)
class TestPathSuccessAgainstChains:
    def test_tree(self, q, h):
        chain = tree_routing_chain(h, q)
        assert closed_form_path_success("tree", h, q, 16) == pytest.approx(
            routing_success_probability(chain, h), abs=1e-12
        )

    def test_hypercube(self, q, h):
        chain = hypercube_routing_chain(h, q)
        assert closed_form_path_success("hypercube", h, q, 16) == pytest.approx(
            routing_success_probability(chain, h), abs=1e-12
        )

    def test_xor(self, q, h):
        chain = xor_routing_chain(h, q)
        assert closed_form_path_success("xor", h, q, 16) == pytest.approx(
            routing_success_probability(chain, h), abs=1e-9
        )

    def test_ring(self, q, h):
        chain = ring_routing_chain(h, q)
        assert closed_form_path_success("ring", h, q, 16) == pytest.approx(
            routing_success_probability(chain, h), abs=1e-9
        )


@pytest.mark.parametrize("q", FAILURE_PROBABILITIES)
class TestPerPhaseFailureAgainstChains:
    def test_xor_phase_failure(self, q):
        geometry = get_geometry("xor")
        h = 6
        chain = xor_routing_chain(h, q)
        for completed_phases in range(h):
            remaining = h - completed_phases
            expected = 1.0 - geometry.phase_failure_probability(remaining, q, 16)
            assert phase_success_probability(chain, completed_phases) == pytest.approx(
                expected, abs=1e-9
            )

    def test_ring_phase_failure(self, q):
        geometry = get_geometry("ring")
        h = 5
        chain = ring_routing_chain(h, q)
        for completed_phases in range(h):
            remaining = h - completed_phases
            expected = 1.0 - geometry.phase_failure_probability(remaining, q, 16)
            assert phase_success_probability(chain, completed_phases) == pytest.approx(
                expected, abs=1e-9
            )

    def test_symphony_phase_failure(self, q):
        d = 12
        geometry = get_geometry("smallworld")
        chain = symphony_routing_chain(3, q, d=d)
        expected = 1.0 - geometry.phase_failure_probability(1, q, d)
        assert phase_success_probability(chain, 0) == pytest.approx(expected, abs=1e-9)

    def test_symphony_phase_failure_with_extra_links(self, q):
        d = 12
        geometry = get_geometry("smallworld", near_neighbors=2, shortcuts=3)
        chain = symphony_routing_chain(3, q, d=d, near_neighbors=2, shortcuts=3)
        expected = 1.0 - geometry.phase_failure_probability(1, q, d)
        assert phase_success_probability(chain, 0) == pytest.approx(expected, abs=1e-9)


@pytest.mark.parametrize("q", FAILURE_PROBABILITIES)
class TestRingWithExplicitCap:
    def test_capped_ring_matches_capped_chain(self, q):
        from repro.core.geometries.ring import RingGeometry

        cap = 3
        geometry = RingGeometry(max_suboptimal_hops=cap)
        h = 5
        chain = ring_routing_chain(h, q, max_suboptimal_hops=cap)
        closed = math.prod(
            1.0 - geometry.phase_failure_probability(m, q, 16) for m in range(1, h + 1)
        )
        assert closed == pytest.approx(routing_success_probability(chain, h), abs=1e-9)


class TestSymphonyFullPath:
    @pytest.mark.parametrize("q", [0.1, 0.4])
    def test_multi_phase_success(self, q):
        d = 10
        h = 4
        geometry = get_geometry("smallworld")
        chain = symphony_routing_chain(h, q, d=d)
        closed = math.prod(
            1.0 - geometry.phase_failure_probability(m, q, d) for m in range(1, h + 1)
        )
        assert closed == pytest.approx(routing_success_probability(chain, h), abs=1e-9)
