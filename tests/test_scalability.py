"""Tests for the Section 5 scalability classification machinery."""

from __future__ import annotations

import math

import pytest

from repro.core.geometry import get_geometry
from repro.core.scalability import (
    ScalabilityAssessment,
    assess_scalability,
    numerical_success_limit,
    scalability_report,
)
from repro.core.geometries import PAPER_GEOMETRIES
from repro.exceptions import InvalidParameterError

#: The paper's verdicts (Section 5): which basic routing geometries are
#: scalable — plus the de Bruijn extension, tree-like (required neighbour)
#: and hence unscalable.
PAPER_VERDICTS = {
    "tree": False,
    "hypercube": True,
    "xor": True,
    "ring": True,
    "smallworld": False,
    "debruijn": False,
}


class TestAssessScalability:
    def test_verdicts_match_the_paper(self, geometry_name):
        assessment = assess_scalability(geometry_name, q=0.1)
        assert assessment.scalable is PAPER_VERDICTS[geometry_name]

    def test_numerical_evidence_is_consistent_with_the_verdict(self, geometry_name):
        assessment = assess_scalability(geometry_name, q=0.1)
        assert assessment.consistent, (
            f"numerical diagnostics disagree with the paper's verdict for {geometry_name}: "
            f"{assessment.series_diagnostic}"
        )

    @pytest.mark.parametrize("q", [0.05, 0.3])
    def test_consistency_holds_across_failure_probabilities(self, geometry_name, q):
        assert assess_scalability(geometry_name, q=q).consistent

    def test_accepts_geometry_instances(self):
        assessment = assess_scalability(get_geometry("xor"), q=0.2)
        assert assessment.verdict.geometry == "xor"

    def test_rejects_degenerate_probe_probabilities(self):
        with pytest.raises(InvalidParameterError):
            assess_scalability("xor", q=0.0)
        with pytest.raises(InvalidParameterError):
            assess_scalability("xor", q=1.0)


class TestNumericalSuccessLimit:
    def test_scalable_geometries_have_positive_limits(self):
        for name in ("hypercube", "xor", "ring"):
            limit = numerical_success_limit(get_geometry(name), 0.1)
            assert limit is not None
            assert limit > 0.5

    def test_unscalable_geometries_collapse(self):
        # The product either visibly collapses to zero or fails to stabilise within
        # the phase budget (reported as None); it must never settle on a positive limit.
        for name in ("tree", "smallworld"):
            limit = numerical_success_limit(get_geometry(name), 0.1)
            assert limit is None or limit == pytest.approx(0.0, abs=1e-12)

    def test_tree_limit_collapses_with_a_larger_phase_budget(self):
        limit = numerical_success_limit(get_geometry("tree"), 0.1, max_phases=10000)
        assert limit == pytest.approx(0.0, abs=1e-12)

    def test_limit_matches_infinite_product_for_hypercube(self):
        # prod_{m>=1} (1 - q^m) has a well-known value; check one point.
        limit = numerical_success_limit(get_geometry("hypercube"), 0.5)
        assert limit == pytest.approx(0.2887880951, rel=1e-6)

    def test_limit_decreases_with_failure_probability(self):
        geometry = get_geometry("xor")
        assert numerical_success_limit(geometry, 0.4) < numerical_success_limit(geometry, 0.1)


class TestScalabilityReport:
    def test_one_row_per_geometry(self):
        rows = scalability_report(list(PAPER_GEOMETRIES))
        assert len(rows) == len(PAPER_GEOMETRIES)
        verdicts = {row["geometry"]: row["scalable"] for row in rows}
        assert verdicts == {name: PAPER_VERDICTS[name] for name in PAPER_GEOMETRIES}

    def test_rows_carry_numerical_evidence(self):
        rows = scalability_report(["hypercube", "smallworld"])
        by_name = {row["geometry"]: row for row in rows}
        assert by_name["hypercube"]["numerical_success_limit"] > 0.5
        assert by_name["smallworld"]["numerical_success_limit"] == pytest.approx(0.0, abs=1e-12)
        assert all(row["consistent"] for row in rows)

    def test_empty_input_rejected(self):
        with pytest.raises(InvalidParameterError):
            scalability_report([])
