"""Integration tests: the RCM predictions against the overlay simulators.

These are the reproduction's equivalent of the paper's Figure 6 agreement
claims, scaled down to sizes that run in seconds:

* tree and hypercube — the analytical expressions are essentially exact for
  the simulated overlays, so the match is tight;
* XOR — the analytical model abstracts the suffix randomisation of real
  Kademlia tables, so a moderate tolerance is used;
* ring — the analytical curve is a *bound*: simulation must not do worse
  (beyond Monte-Carlo noise), and at low failure rates it must be close;
* Symphony — the model is coarse (the paper never validates it against
  simulation); only the qualitative collapse is checked.
"""

from __future__ import annotations

import pytest

from repro.core.geometry import get_geometry
from repro.sim.static_resilience import simulate_geometry

SIMULATION_D = 10
PAIRS = 1200
TRIALS = 2
SEED = 424242


def simulated_routability(geometry: str, q: float, **options) -> float:
    sweep = simulate_geometry(
        geometry, SIMULATION_D, [q], pairs=PAIRS, trials=TRIALS, seed=SEED, **options
    )
    return sweep.results[0].routability


class TestTightAgreement:
    @pytest.mark.parametrize("q", [0.1, 0.3, 0.5])
    def test_tree_matches_analysis(self, q):
        predicted = get_geometry("tree").routability(q, d=SIMULATION_D)
        assert simulated_routability("tree", q) == pytest.approx(predicted, abs=0.05)

    @pytest.mark.parametrize("q", [0.1, 0.3, 0.5])
    def test_hypercube_matches_analysis(self, q):
        predicted = get_geometry("hypercube").routability(q, d=SIMULATION_D)
        assert simulated_routability("hypercube", q) == pytest.approx(predicted, abs=0.05)


class TestModerateAgreement:
    @pytest.mark.parametrize("q", [0.1, 0.3, 0.5])
    def test_xor_matches_analysis_within_model_error(self, q):
        predicted = get_geometry("xor").routability(q, d=SIMULATION_D)
        assert simulated_routability("xor", q) == pytest.approx(predicted, abs=0.12)


class TestRingBound:
    @pytest.mark.parametrize("q", [0.1, 0.2])
    def test_bound_is_tight_at_low_failure_rates(self, q):
        predicted = get_geometry("ring").routability(q, d=SIMULATION_D)
        assert simulated_routability("ring", q) == pytest.approx(predicted, abs=0.06)

    @pytest.mark.parametrize("q", [0.4, 0.6])
    def test_analysis_is_a_lower_bound_on_routability(self, q):
        predicted = get_geometry("ring").routability(q, d=SIMULATION_D)
        # Simulation may beat the bound substantially but must not fall meaningfully below it.
        assert simulated_routability("ring", q) >= predicted - 0.05


class TestSymphonyQualitative:
    def test_routability_collapses_with_failure_probability(self):
        gentle = simulated_routability("smallworld", 0.1)
        harsh = simulated_routability("smallworld", 0.4)
        assert harsh < gentle
        assert harsh < 0.2

    def test_extra_links_help_in_simulation_and_analysis(self):
        sparse_sim = simulated_routability("smallworld", 0.2)
        dense_sim = simulated_routability("smallworld", 0.2, near_neighbors=2, shortcuts=2)
        assert dense_sim > sparse_sim
        sparse_analysis = get_geometry("smallworld").routability(0.2, d=SIMULATION_D)
        dense_analysis = get_geometry(
            "smallworld", near_neighbors=2, shortcuts=2
        ).routability(0.2, d=SIMULATION_D)
        assert dense_analysis > sparse_analysis


class TestOrderingIsPreservedBySimulation:
    @pytest.mark.parametrize("q", [0.2, 0.4])
    def test_tree_is_the_weakest_geometry_in_simulation_too(self, q):
        tree = simulated_routability("tree", q)
        for other in ("hypercube", "xor", "ring"):
            assert simulated_routability(other, q) > tree
