"""Tests for the fused multi-cell sweep path.

The fused path is a third implementation of the routing rules, bound by the
same invariant chain as the batch kernels: ``route_pairs_stacked`` must agree
pair-for-pair with per-cell :func:`route_pairs` (which is itself
property-tested against the scalar ``Overlay.route`` oracle), and
``SweepRunner``'s fused dispatch must produce bit-identical cell results to
the per-cell dispatch for any worker count.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.dht.failures import survival_mask
from repro.exceptions import InvalidParameterError, RoutingError
from repro.sim.churn import ChurnConfig, simulate_churn
from repro.sim.engine import SweepRunner, route_pairs, route_pairs_stacked
from repro.sim.sampling import sample_survivor_pair_arrays
from repro.sim.static_resilience import build_overlay

from conftest import SMALL_D


def assert_metrics_equal(left, right):
    """Field-wise RoutingMetrics equality that treats nan == nan (empty-mean sentinel)."""
    assert left.attempts == right.attempts
    assert left.successes == right.successes
    assert left.failure_reasons == right.failure_reasons
    for field in ("mean_hops_successful", "mean_hops_failed"):
        a, b = getattr(left, field), getattr(right, field)
        assert a == b or (math.isnan(a) and math.isnan(b)), field


def stacked_cells(overlay, qs, count, seed):
    """Per-cell masks and pairs for a mixed-q stack (skipping degenerate masks)."""
    rng = np.random.default_rng(seed)
    masks, sources, destinations = [], [], []
    for q in qs:
        alive = survival_mask(overlay.n_nodes, q, rng)
        if int(alive.sum()) < 2:
            continue
        src, dst = sample_survivor_pair_arrays(alive, count, rng)
        masks.append(alive)
        sources.append(src)
        destinations.append(dst)
    if not masks:
        pytest.skip("every mask in the stack was degenerate")
    return masks, sources, destinations


class TestStackedRouting:
    """route_pairs_stacked agrees pair-for-pair with per-cell route_pairs."""

    QS = (0.0, 0.25, 0.5, 0.8)

    def test_matches_per_cell_routing_pair_for_pair(self, small_overlays, geometry_name):
        overlay = small_overlays[geometry_name]
        masks, sources, destinations = stacked_cells(overlay, self.QS, 120, seed=31)
        per_cell = [
            route_pairs(overlay, src, dst, alive)
            for alive, src, dst in zip(masks, sources, destinations)
        ]
        # Interleave the cells' pairs in a fixed shuffle so the fused batch
        # exercises non-contiguous cell indices, then undo the shuffle.
        flat_sources = np.concatenate(sources)
        flat_destinations = np.concatenate(destinations)
        cell_indices = np.repeat(np.arange(len(masks), dtype=np.int64), 120)
        order = np.random.default_rng(7).permutation(flat_sources.size)
        outcome = route_pairs_stacked(
            overlay,
            flat_sources[order],
            flat_destinations[order],
            np.stack(masks),
            cell_indices[order],
        )
        inverse = np.argsort(order)
        succeeded = outcome.succeeded[inverse]
        hops = outcome.hops[inverse]
        codes = outcome.failure_codes[inverse]
        offset = 0
        for cell_outcome in per_cell:
            span = slice(offset, offset + cell_outcome.n_pairs)
            assert np.array_equal(succeeded[span], cell_outcome.succeeded)
            assert np.array_equal(hops[span], cell_outcome.hops)
            assert np.array_equal(codes[span], cell_outcome.failure_codes)
            offset += cell_outcome.n_pairs

    def test_chunking_does_not_change_stacked_outcomes(self, small_overlays, geometry_name):
        overlay = small_overlays[geometry_name]
        masks, sources, destinations = stacked_cells(overlay, self.QS, 90, seed=13)
        arguments = (
            np.concatenate(sources),
            np.concatenate(destinations),
            np.stack(masks),
            np.repeat(np.arange(len(masks), dtype=np.int64), 90),
        )
        whole = route_pairs_stacked(overlay, *arguments)
        chunked = route_pairs_stacked(overlay, *arguments, batch_size=23)
        assert np.array_equal(whole.succeeded, chunked.succeeded)
        assert np.array_equal(whole.hops, chunked.hops)
        assert np.array_equal(whole.failure_codes, chunked.failure_codes)

    def test_unreferenced_degenerate_mask_rows_are_ignored(self, small_overlays, geometry_name):
        # A stack may carry rows no pair routes under (degenerate cells with
        # fewer than two survivors); they must not disturb the other cells.
        overlay = small_overlays[geometry_name]
        alive = np.ones(overlay.n_nodes, dtype=bool)
        dead = np.zeros(overlay.n_nodes, dtype=bool)
        dead[0] = True  # a single survivor: no routable pairs exist
        src, dst = sample_survivor_pair_arrays(alive, 50, np.random.default_rng(3))
        stacked = route_pairs_stacked(
            overlay, src, dst, np.stack([dead, alive]), np.ones(50, dtype=np.int64)
        )
        plain = route_pairs(overlay, src, dst, alive)
        assert np.array_equal(stacked.succeeded, plain.succeeded)
        assert np.array_equal(stacked.hops, plain.hops)

    def test_two_survivor_mask_routes(self, small_overlays):
        overlay = small_overlays["ring"]
        alive = np.zeros(overlay.n_nodes, dtype=bool)
        alive[[2, 40]] = True
        outcome = route_pairs_stacked(
            overlay, [2], [40], alive[None, :], [0]
        )
        expected = route_pairs(overlay, [2], [40], alive)
        assert np.array_equal(outcome.succeeded, expected.succeeded)

    def test_endpoint_dead_in_its_own_cell_rejected(self, small_overlays, geometry_name):
        # Node 5 is alive in mask 0 but dead in mask 1: a pair assigned to
        # cell 1 must be rejected even though another mask would accept it.
        overlay = small_overlays[geometry_name]
        permissive = np.ones(overlay.n_nodes, dtype=bool)
        restrictive = np.ones(overlay.n_nodes, dtype=bool)
        restrictive[5] = False
        stack = np.stack([permissive, restrictive])
        route_pairs_stacked(overlay, [5], [9], stack, [0])  # cell 0 accepts it
        with pytest.raises(RoutingError):
            route_pairs_stacked(overlay, [5], [9], stack, [1])
        with pytest.raises(RoutingError):
            route_pairs_stacked(overlay, [9], [5], stack, [1])

    def test_cell_index_out_of_stack_rejected(self, small_overlays):
        overlay = small_overlays["xor"]
        stack = np.ones((2, overlay.n_nodes), dtype=bool)
        with pytest.raises(RoutingError):
            route_pairs_stacked(overlay, [0], [1], stack, [2])
        with pytest.raises(RoutingError):
            route_pairs_stacked(overlay, [0], [1], stack, [-1])

    def test_mismatched_cell_indices_rejected(self, small_overlays):
        overlay = small_overlays["xor"]
        stack = np.ones((1, overlay.n_nodes), dtype=bool)
        with pytest.raises(RoutingError):
            route_pairs_stacked(overlay, [0, 2], [1, 3], stack, [0])

    def test_flat_mask_rejected(self, small_overlays):
        overlay = small_overlays["xor"]
        with pytest.raises(RoutingError):
            route_pairs_stacked(
                overlay, [0], [1], np.ones(overlay.n_nodes, dtype=bool), [0]
            )

    def test_identical_endpoints_rejected(self, small_overlays):
        overlay = small_overlays["xor"]
        stack = np.ones((1, overlay.n_nodes), dtype=bool)
        with pytest.raises(RoutingError):
            route_pairs_stacked(overlay, [3], [3], stack, [0])

    def test_union_width_cap_does_not_change_outcomes(
        self, small_overlays, geometry_name, monkeypatch
    ):
        # Stacks wider than the union-table memory cap are routed as
        # bounded-width sub-unions; forcing a tiny cap must not change any
        # per-pair outcome.
        import repro.sim.engine as engine_module

        overlay = small_overlays[geometry_name]
        masks, sources, destinations = stacked_cells(overlay, self.QS, 60, seed=47)
        arguments = (
            np.concatenate(sources),
            np.concatenate(destinations),
            np.stack(masks),
            np.repeat(np.arange(len(masks), dtype=np.int64), 60),
        )
        whole = route_pairs_stacked(overlay, *arguments)
        monkeypatch.setattr(engine_module, "_MAX_UNION_TABLE_ELEMENTS", 1)
        split = route_pairs_stacked(overlay, *arguments)
        assert np.array_equal(whole.succeeded, split.succeeded)
        assert np.array_equal(whole.hops, split.hops)
        assert np.array_equal(whole.failure_codes, split.failure_codes)


class TestFusedSweepRunner:
    """Fused dispatch is bit-identical to per-cell dispatch for any worker count."""

    GEOMETRIES = ("tree", "hypercube", "xor", "ring", "smallworld")
    # q = 1.0 kills every node, so the grid includes degenerate cells.
    QS = (0.0, 0.45, 0.9, 1.0)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_fused_matches_per_cell(self, workers):
        reference = SweepRunner(
            pairs=80, replicates=2, workers=1, base_seed=606, fused=False
        ).run(list(self.GEOMETRIES), SMALL_D, list(self.QS))
        with SweepRunner(
            pairs=80, replicates=2, workers=workers, base_seed=606, fused=True
        ) as runner:
            fused = runner.run(list(self.GEOMETRIES), SMALL_D, list(self.QS))
        assert fused.keys() == reference.keys()
        for cell, expected in reference.items():
            assert fused[cell].degenerate == expected.degenerate, cell
            assert fused[cell].pairs == expected.pairs, cell
            assert_metrics_equal(fused[cell].metrics, expected.metrics)

    @pytest.mark.parametrize("geometry", GEOMETRIES)
    def test_fused_matches_per_cell_odd_workers_nondefault_batch(self, geometry):
        # An odd worker count (pool size != task-count divisors) combined
        # with a non-default batch size exercises the chunked hop loop under
        # pooled fused dispatch; metrics must stay bit-identical to the
        # unchunked single-process per-cell reference.
        reference = SweepRunner(
            pairs=70, replicates=2, workers=1, base_seed=404, fused=False
        ).run([geometry], SMALL_D, list(self.QS))
        with SweepRunner(
            pairs=70, replicates=2, workers=3, batch_size=17, base_seed=404, fused=True
        ) as runner:
            fused = runner.run([geometry], SMALL_D, list(self.QS))
        assert fused.keys() == reference.keys()
        for cell, expected in reference.items():
            assert fused[cell].degenerate == expected.degenerate, cell
            assert_metrics_equal(fused[cell].metrics, expected.metrics)

    @pytest.mark.parametrize("geometry", GEOMETRIES)
    def test_churn_fused_epoch_matches_scalar_with_nondefault_batch(self, geometry):
        # The churn driver fuses every step's usable mask into one stacked
        # batch; with a non-default batch size it must still match the
        # scalar oracle path step for step, on every geometry.
        config = ChurnConfig(
            leave_probability=0.08,
            rejoin_probability=0.05,
            steps_per_epoch=6,
            pairs_per_step=60,
        )
        overlay = build_overlay(geometry, SMALL_D, seed=1234)
        batch = simulate_churn(overlay, config, seed=88, engine="batch", batch_size=23)
        scalar = simulate_churn(overlay, config, seed=88, engine="scalar")
        assert len(batch.steps) == len(scalar.steps)
        for fused_step, scalar_step in zip(batch.steps, scalar.steps):
            assert fused_step.step == scalar_step.step
            assert fused_step.usable_fraction == scalar_step.usable_fraction
            assert_metrics_equal(fused_step.metrics, scalar_step.metrics)

    def test_per_cell_workers_match_fused_pool(self):
        # Cross mode *and* worker count in one comparison.
        per_cell = SweepRunner(
            pairs=60, replicates=2, workers=4, base_seed=99, fused=False
        )
        fused = SweepRunner(pairs=60, replicates=2, workers=4, base_seed=99, fused=True)
        with per_cell, fused:
            a = per_cell.sweep("xor", SMALL_D, [0.1, 0.6])
            b = fused.sweep("xor", SMALL_D, [0.1, 0.6])
        assert a.routabilities == b.routabilities
        for left, right in zip(a.results, b.results):
            assert_metrics_equal(left.metrics, right.metrics)

    def test_fused_memoization_only_adds_missing_cells(self):
        with SweepRunner(pairs=40, replicates=1, workers=1, base_seed=11) as runner:
            assert runner.fused
            runner.sweep("ring", SMALL_D, [0.1])
            assert runner.completed_cells == 1
            runner.sweep("ring", SMALL_D, [0.1, 0.4])
            assert runner.completed_cells == 2

    def test_fused_degenerate_cells_are_counted(self):
        with SweepRunner(pairs=20, replicates=2, workers=1, base_seed=3) as runner:
            sweep = runner.sweep("tree", SMALL_D, [1.0])
        assert sweep.results[0].degenerate_trials == 2
        assert sweep.results[0].metrics.attempts == 0

    def test_close_releases_the_pool_and_keeps_results(self):
        # Two replicates give two overlay groups, which is what sends the
        # fused dispatch to the worker pool in the first place.
        runner = SweepRunner(pairs=30, replicates=2, workers=2, base_seed=5)
        first = runner.sweep("hypercube", SMALL_D, [0.2, 0.5])
        assert runner._pool is not None
        runner.close()
        assert runner._pool is None
        # Memoized cells survive close(); a new dispatch recreates the pool.
        second = runner.sweep("hypercube", SMALL_D, [0.2, 0.5])
        assert first.routabilities == second.routabilities
        runner.close()

    def test_overlay_options_are_forwarded_fused(self):
        dense = SweepRunner(
            pairs=200, replicates=2, workers=1, base_seed=5,
            overlay_options={"near_neighbors": 2, "shortcuts": 3},
        )
        sparse = SweepRunner(pairs=200, replicates=2, workers=1, base_seed=5)
        dense_sweep = dense.sweep("smallworld", SMALL_D, [0.3])
        sparse_sweep = sparse.sweep("smallworld", SMALL_D, [0.3])
        assert dense_sweep.results[0].routability > sparse_sweep.results[0].routability


class TestFailureModelGrid:
    """The (geometry x model x severity x replicate) grid keeps the fused /
    per-cell / worker bit-identity invariant for every failure model."""

    MODELS = ("uniform", "targeted", "regional", "subtree", "uniform+regional")
    QS = (0.15, 0.45, 1.0)  # includes all-degenerate cells at severity 1.0

    @pytest.mark.parametrize("workers", [1, 3])
    def test_fused_matches_per_cell_across_models(self, workers):
        geometries = ["tree", "ring", "smallworld"]
        reference = SweepRunner(
            pairs=60, replicates=2, workers=1, base_seed=777, fused=False
        ).run(geometries, SMALL_D, list(self.QS), list(self.MODELS))
        with SweepRunner(
            pairs=60, replicates=2, workers=workers, base_seed=777, fused=True
        ) as runner:
            fused = runner.run(geometries, SMALL_D, list(self.QS), list(self.MODELS))
        assert fused.keys() == reference.keys()
        assert {cell.model for cell in fused} == set(self.MODELS)
        for cell, expected in reference.items():
            assert fused[cell].degenerate == expected.degenerate, cell
            assert_metrics_equal(fused[cell].metrics, expected.metrics)

    def test_models_share_overlay_groups_but_not_results(self):
        with SweepRunner(pairs=50, replicates=1, workers=1, base_seed=31) as runner:
            uniform = runner.sweep("xor", SMALL_D, [0.4], failure_model="uniform")
            targeted = runner.sweep("xor", SMALL_D, [0.4], failure_model="targeted")
        assert runner.completed_cells == 2  # one cell per model, memoized apart
        assert uniform.failure_model == "uniform"
        assert targeted.failure_model == "targeted"

    def test_runner_sweep_matches_rerun_for_nonuniform_model(self):
        first = SweepRunner(pairs=40, replicates=2, workers=1, base_seed=88).sweep(
            "ring", SMALL_D, [0.2, 0.6], failure_model="regional"
        )
        second = SweepRunner(pairs=40, replicates=2, workers=1, base_seed=88).sweep(
            "ring", SMALL_D, [0.2, 0.6], failure_model="regional"
        )
        assert first.routabilities == second.routabilities
        assert all(r.failure_model == "regional" for r in first.results)

    def test_unknown_model_kind_rejected(self):
        runner = SweepRunner(pairs=10, replicates=1)
        with pytest.raises(InvalidParameterError):
            runner.run(["xor"], SMALL_D, [0.1], ["meteor"])
        with pytest.raises(InvalidParameterError):
            runner.run(["xor"], SMALL_D, [0.1], [])

    def test_targeted_grid_runs_identically_with_worker_pool(self):
        # Worker processes resolve the in-degree ranking from the published
        # shared-memory table; the ranking (and hence every mask) must match
        # the in-process build exactly.
        serial = SweepRunner(
            pairs=60, replicates=2, workers=1, base_seed=55, fused=True
        ).run(["smallworld"], SMALL_D, [0.3, 0.6], ["targeted"])
        with SweepRunner(
            pairs=60, replicates=2, workers=4, base_seed=55, fused=True
        ) as runner:
            pooled = runner.run(["smallworld"], SMALL_D, [0.3, 0.6], ["targeted"])
        for cell, expected in serial.items():
            assert_metrics_equal(pooled[cell].metrics, expected.metrics)
