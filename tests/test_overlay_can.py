"""Tests specific to the hypercube (CAN) overlay simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dht.can import HypercubeOverlay
from repro.dht.identifiers import hamming_distance
from repro.dht.routing import FailureReason

D = 7


@pytest.fixture(scope="module")
def overlay():
    return HypercubeOverlay.build(D)


def all_alive(overlay):
    return np.ones(overlay.n_nodes, dtype=bool)


class TestTopology:
    def test_every_node_has_d_neighbors(self, overlay):
        for node in (0, 1, 63, 127):
            assert len(overlay.neighbors(node)) == D

    def test_neighbors_are_at_hamming_distance_one(self, overlay):
        for node in (0, 42, 127):
            for neighbor in overlay.neighbors(node):
                assert hamming_distance(node, neighbor) == 1

    def test_adjacency_is_symmetric(self, overlay):
        for node in (3, 64, 100):
            for neighbor in overlay.neighbors(node):
                assert node in overlay.neighbors(neighbor)


class TestRouting:
    def test_hop_count_equals_hamming_distance(self, overlay, rng):
        alive = all_alive(overlay)
        for _ in range(40):
            source, destination = rng.choice(overlay.n_nodes, size=2, replace=False)
            result = overlay.route(int(source), int(destination), alive)
            assert result.succeeded
            assert result.hops == hamming_distance(int(source), int(destination))

    def test_random_tie_breaking_also_delivers(self, overlay, rng):
        alive = all_alive(overlay)
        for _ in range(20):
            source, destination = rng.choice(overlay.n_nodes, size=2, replace=False)
            result = overlay.route(int(source), int(destination), alive, rng=rng)
            assert result.succeeded
            assert result.hops == hamming_distance(int(source), int(destination))

    def test_progressing_neighbors_counts_differing_bits(self, overlay):
        alive = all_alive(overlay)
        source, destination = 0, 0b0000111
        candidates = overlay.progressing_neighbors(source, destination, alive)
        assert len(candidates) == 3
        for candidate in candidates:
            assert hamming_distance(candidate, destination) == 2

    def test_route_survives_single_neighbor_failure(self, overlay):
        # Destination three bits away: even with one progressing neighbour dead,
        # two alternatives remain for the first hop.
        source, destination = 0, 0b0000111
        alive = all_alive(overlay)
        alive[0b0000100] = False
        result = overlay.route(source, destination, alive)
        assert result.succeeded

    def test_route_fails_when_all_progressing_neighbors_are_dead(self, overlay):
        source, destination = 0, 0b0000011
        alive = all_alive(overlay)
        alive[0b0000001] = False
        alive[0b0000010] = False
        result = overlay.route(source, destination, alive)
        assert not result.succeeded
        assert result.failure_reason is FailureReason.DEAD_END

    def test_last_hop_only_needs_the_destination(self, overlay):
        # At Hamming distance one the only progressing neighbour is the destination
        # itself, which is alive by assumption.
        source, destination = 0, 0b1000000
        alive = all_alive(overlay)
        # Kill every other neighbour of the source.
        for neighbor in overlay.neighbors(source):
            if neighbor != destination:
                alive[neighbor] = False
        result = overlay.route(source, destination, alive)
        assert result.succeeded
        assert result.hops == 1
