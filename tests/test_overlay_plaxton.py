"""Tests specific to the Plaxton-tree overlay simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dht.identifiers import common_prefix_length, hamming_distance
from repro.dht.plaxton import PlaxtonOverlay
from repro.dht.routing import FailureReason
from repro.exceptions import TopologyError

D = 7


@pytest.fixture(scope="module")
def matched_overlay():
    return PlaxtonOverlay.build(D)


@pytest.fixture(scope="module")
def random_suffix_overlay():
    return PlaxtonOverlay.build(D, table_mode="random-suffix", seed=3)


def all_alive(overlay):
    return np.ones(overlay.n_nodes, dtype=bool)


class TestTableConstruction:
    def test_matched_suffix_entry_flips_exactly_one_bit(self, matched_overlay):
        for node in (0, 17, 100, 127):
            for position in range(1, D + 1):
                neighbor = matched_overlay.neighbor_for_bit(node, position)
                assert hamming_distance(node, neighbor) == 1

    def test_entries_share_the_required_prefix(self, random_suffix_overlay):
        for node in (0, 5, 77, 127):
            for position in range(1, D + 1):
                neighbor = random_suffix_overlay.neighbor_for_bit(node, position)
                assert common_prefix_length(node, neighbor, D) == position - 1

    def test_unknown_table_mode_rejected(self):
        with pytest.raises(TopologyError):
            PlaxtonOverlay.build(4, table_mode="bogus")

    def test_neighbor_for_bit_validates_position(self, matched_overlay):
        with pytest.raises(TopologyError):
            matched_overlay.neighbor_for_bit(0, D + 1)

    def test_table_mode_property(self, matched_overlay, random_suffix_overlay):
        assert matched_overlay.table_mode == "matched-suffix"
        assert random_suffix_overlay.table_mode == "random-suffix"


class TestRouting:
    def test_hop_count_equals_hamming_distance_in_matched_mode(self, matched_overlay, rng):
        alive = all_alive(matched_overlay)
        for _ in range(40):
            source, destination = rng.choice(matched_overlay.n_nodes, size=2, replace=False)
            result = matched_overlay.route(int(source), int(destination), alive)
            assert result.succeeded
            assert result.hops == hamming_distance(int(source), int(destination))

    def test_random_suffix_mode_still_delivers_without_failures(self, random_suffix_overlay, rng):
        alive = all_alive(random_suffix_overlay)
        for _ in range(40):
            source, destination = rng.choice(random_suffix_overlay.n_nodes, size=2, replace=False)
            result = random_suffix_overlay.route(int(source), int(destination), alive)
            assert result.succeeded
            assert result.hops <= D

    def test_killing_the_required_neighbor_drops_the_message(self, matched_overlay):
        source, destination = 0, 0b1100000  # differs in bits 1 and 2
        alive = all_alive(matched_overlay)
        required_first_hop = matched_overlay.neighbor_for_bit(source, 1)
        alive[required_first_hop] = False
        result = matched_overlay.route(source, destination, alive)
        assert not result.succeeded
        assert result.failure_reason is FailureReason.REQUIRED_NEIGHBOR_FAILED
        assert result.hops == 0

    def test_killing_an_irrelevant_neighbor_does_not_matter(self, matched_overlay):
        source, destination = 0, 0b1000000  # only bit 1 differs
        alive = all_alive(matched_overlay)
        # Kill the neighbour for bit 2, which this route never needs.
        alive[matched_overlay.neighbor_for_bit(source, 2)] = False
        result = matched_overlay.route(source, destination, alive)
        assert result.succeeded
        assert result.hops == 1

    def test_failure_mid_route_reports_partial_path(self, matched_overlay):
        source = 0
        destination = 0b1110000  # bits 1-3 differ, so the second hop is not the destination
        alive = all_alive(matched_overlay)
        first_hop = matched_overlay.neighbor_for_bit(source, 1)
        second_hop = matched_overlay.neighbor_for_bit(first_hop, 2)
        assert second_hop != destination
        alive[second_hop] = False
        result = matched_overlay.route(source, destination, alive)
        assert not result.succeeded
        assert result.path == (source, first_hop)
