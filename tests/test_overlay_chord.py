"""Tests specific to the Chord (ring) overlay simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dht.chord import ChordOverlay
from repro.dht.identifiers import ring_distance
from repro.dht.routing import FailureReason
from repro.exceptions import TopologyError

D = 7
N = 1 << D


@pytest.fixture(scope="module")
def randomized_overlay():
    return ChordOverlay.build(D, seed=5)


@pytest.fixture(scope="module")
def deterministic_overlay():
    return ChordOverlay.build(D, finger_mode="deterministic")


def all_alive(overlay):
    return np.ones(overlay.n_nodes, dtype=bool)


class TestFingerConstruction:
    def test_randomized_fingers_land_in_their_ranges(self, randomized_overlay):
        for node in (0, 31, 100, 127):
            for index in range(1, D + 1):
                finger = randomized_overlay.finger(node, index)
                distance = ring_distance(node, finger, N)
                assert 2 ** (D - index) <= distance < 2 ** (D - index + 1)

    def test_deterministic_fingers_sit_at_powers_of_two(self, deterministic_overlay):
        for node in (0, 20, 127):
            for index in range(1, D + 1):
                finger = deterministic_overlay.finger(node, index)
                assert ring_distance(node, finger, N) == 2 ** (D - index)

    def test_last_finger_is_the_successor(self, randomized_overlay):
        for node in (0, 64, 127):
            assert randomized_overlay.finger(node, D) == (node + 1) % N

    def test_unknown_finger_mode_rejected(self):
        with pytest.raises(TopologyError):
            ChordOverlay.build(4, finger_mode="wild")

    def test_finger_index_validation(self, randomized_overlay):
        with pytest.raises(TopologyError):
            randomized_overlay.finger(0, 0)


class TestRouting:
    def test_ring_distance_strictly_decreases_along_the_path(self, randomized_overlay, rng):
        alive = all_alive(randomized_overlay)
        for _ in range(40):
            source, destination = rng.choice(N, size=2, replace=False)
            result = randomized_overlay.route(int(source), int(destination), alive)
            assert result.succeeded
            distances = [ring_distance(node, int(destination), N) for node in result.path]
            assert all(b < a for a, b in zip(distances, distances[1:]))

    def test_routing_never_overshoots_the_destination(self, randomized_overlay, rng):
        alive = all_alive(randomized_overlay)
        for _ in range(30):
            source, destination = rng.choice(N, size=2, replace=False)
            result = randomized_overlay.route(int(source), int(destination), alive)
            total = ring_distance(int(source), int(destination), N)
            travelled = sum(
                ring_distance(a, b, N) for a, b in zip(result.path, result.path[1:])
            )
            assert travelled == total

    def test_deterministic_variant_uses_logarithmic_hops(self, deterministic_overlay, rng):
        alive = all_alive(deterministic_overlay)
        for _ in range(30):
            source, destination = rng.choice(N, size=2, replace=False)
            result = deterministic_overlay.route(int(source), int(destination), alive)
            assert result.succeeded
            assert result.hops <= D

    def test_suboptimal_progress_is_preserved(self, deterministic_overlay):
        # Kill the finger that covers half the ring: routing falls back to the
        # quarter-ring finger but the distance already covered is not lost.
        source = 0
        destination = (N - 1)
        alive = all_alive(deterministic_overlay)
        half_finger = deterministic_overlay.finger(source, 1)
        if half_finger != destination:
            alive[half_finger] = False
            result = deterministic_overlay.route(source, destination, alive)
            assert result.succeeded
            assert result.hops <= 2 * D

    def test_route_fails_when_no_finger_makes_progress(self, deterministic_overlay):
        source = 0
        destination = 3
        alive = all_alive(deterministic_overlay)
        # The only fingers that do not overshoot a destination 3 steps away are the
        # successor (distance 1) and the distance-2 finger; kill both.
        alive[1] = False
        alive[2] = False
        result = deterministic_overlay.route(source, destination, alive)
        assert not result.succeeded
        assert result.failure_reason is FailureReason.DEAD_END
