"""Tests for RouteResult / RouteTrace invariants."""

from __future__ import annotations

import pytest

from repro.dht.routing import FailureReason, RouteResult, RouteTrace
from repro.exceptions import RoutingError


class TestRouteResult:
    def test_successful_route_properties(self):
        result = RouteResult(source=1, destination=4, succeeded=True, path=(1, 3, 4))
        assert result.hops == 2
        assert result.reached_identifier == 4
        assert result.failure_reason is FailureReason.NONE

    def test_failed_route_properties(self):
        result = RouteResult(
            source=1,
            destination=4,
            succeeded=False,
            path=(1, 3),
            failure_reason=FailureReason.DEAD_END,
        )
        assert result.hops == 1
        assert result.reached_identifier == 3

    def test_successful_route_rejects_failure_reason(self):
        with pytest.raises(RoutingError):
            RouteResult(
                source=1,
                destination=2,
                succeeded=True,
                path=(1, 2),
                failure_reason=FailureReason.DEAD_END,
            )

    def test_failed_route_requires_failure_reason(self):
        with pytest.raises(RoutingError):
            RouteResult(source=1, destination=2, succeeded=False, path=(1,))

    def test_path_must_start_at_source(self):
        with pytest.raises(RoutingError):
            RouteResult(source=1, destination=2, succeeded=True, path=(3, 2))

    def test_successful_path_must_end_at_destination(self):
        with pytest.raises(RoutingError):
            RouteResult(source=1, destination=2, succeeded=True, path=(1, 3))


class TestRouteTrace:
    def test_success_flow(self):
        trace = RouteTrace(0, 5, hop_limit=10)
        trace.advance(3)
        trace.advance(5)
        result = trace.success()
        assert result.succeeded
        assert result.path == (0, 3, 5)
        assert result.hops == 2

    def test_failure_flow(self):
        trace = RouteTrace(0, 5, hop_limit=10)
        trace.advance(3)
        result = trace.failure(FailureReason.DEAD_END)
        assert not result.succeeded
        assert result.path == (0, 3)
        assert result.failure_reason is FailureReason.DEAD_END

    def test_failure_reason_none_rejected(self):
        trace = RouteTrace(0, 5, hop_limit=10)
        with pytest.raises(RoutingError):
            trace.failure(FailureReason.NONE)

    def test_hop_budget_enforced(self):
        trace = RouteTrace(0, 5, hop_limit=2)
        trace.advance(1)
        trace.advance(2)
        assert trace.hop_budget_exhausted
        with pytest.raises(RoutingError):
            trace.advance(3)

    def test_non_positive_hop_limit_rejected(self):
        with pytest.raises(RoutingError):
            RouteTrace(0, 5, hop_limit=0)

    def test_current_and_path_views(self):
        trace = RouteTrace(7, 2, hop_limit=4)
        assert trace.current == 7
        trace.advance(3)
        assert trace.current == 3
        assert trace.path == (7, 3)
        assert trace.hops_taken == 1
