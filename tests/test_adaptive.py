"""Tests for variance-adaptive trial allocation (repro.sim.adaptive).

The allocator's whole value rests on two properties this file pins down:

* **Statistics**: the Wilson interval really is the score-test inversion it
  claims to be (property-tested against a brute-force scan of the score
  inequality), so freezing on its half-width means what the docs say.
* **Determinism**: adaptive rounds are replicate indices of the uniform
  grid, so every adaptive row pools exactly the uniform sweep's first-``k``
  cells — across worker counts, both dispatch modes, and result-store hits
  — and a recorded ledger replays bit-identically.
"""

from __future__ import annotations

import math
from statistics import NormalDist

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.sim.adaptive import (
    FREEZE_REASONS,
    AdaptiveConfig,
    AllocationLedger,
    AdaptiveReport,
    PointAllocation,
    SweepPoint,
    run_allocation,
    wilson_halfwidth,
    wilson_interval,
)
from repro.sim.engine import SweepCell, SweepCellResult, SweepRunner
from repro.dht.metrics import RoutingMetrics


# --------------------------------------------------------------------- #
# Wilson interval
# --------------------------------------------------------------------- #
class TestWilsonInterval:
    @pytest.mark.parametrize(
        "successes,attempts",
        [(0, 10), (1, 10), (5, 10), (10, 10), (3, 7), (499, 500), (250, 500), (1, 1000)],
    )
    @pytest.mark.parametrize("confidence", [0.8, 0.95, 0.99])
    def test_matches_brute_force_score_inversion(self, successes, attempts, confidence):
        # The interval is defined as every p the normal score test accepts:
        # (p_hat - p)^2 <= z^2 * p * (1 - p) / n.  Scan a dense p grid and
        # compare the accepted set's extremes against the closed form.
        z = NormalDist().inv_cdf(0.5 + confidence / 2.0)
        p_hat = successes / attempts
        grid = np.linspace(0.0, 1.0, 20001)
        accepted = (p_hat - grid) ** 2 <= z * z * grid * (1.0 - grid) / attempts
        assert accepted.any()
        low, high = wilson_interval(successes, attempts, confidence)
        tolerance = 1.0 / 20000 + 1e-12
        assert abs(low - grid[accepted].min()) <= tolerance
        assert abs(high - grid[accepted].max()) <= tolerance

    @pytest.mark.parametrize("successes,attempts", [(0, 5), (2, 9), (9, 9), (400, 1000)])
    def test_interval_contains_the_estimate_and_stays_in_unit_range(
        self, successes, attempts
    ):
        low, high = wilson_interval(successes, attempts)
        assert 0.0 <= low <= successes / attempts <= high <= 1.0

    def test_halfwidth_shrinks_with_more_attempts(self):
        widths = [wilson_halfwidth(n // 2, n) for n in (10, 100, 1000, 10000)]
        assert widths == sorted(widths, reverse=True)

    def test_extreme_estimates_stay_bounded(self):
        # Unlike the Wald interval, p_hat = 1 does not collapse to a point.
        low, high = wilson_interval(50, 50)
        assert high == 1.0
        assert low < 1.0
        low, high = wilson_interval(0, 50)
        assert low == 0.0
        assert high > 0.0

    def test_rejects_invalid_arguments(self):
        with pytest.raises(InvalidParameterError):
            wilson_interval(0, 0)
        with pytest.raises(InvalidParameterError):
            wilson_interval(5, 4)
        with pytest.raises(InvalidParameterError):
            wilson_interval(-1, 4)
        with pytest.raises(InvalidParameterError):
            wilson_interval(2, 4, confidence=1.0)


# --------------------------------------------------------------------- #
# configuration
# --------------------------------------------------------------------- #
class TestAdaptiveConfig:
    def test_validates_parameters(self):
        with pytest.raises(InvalidParameterError):
            AdaptiveConfig(ci_target=0.0)
        with pytest.raises(InvalidParameterError):
            AdaptiveConfig(ci_target=1.5)
        with pytest.raises(InvalidParameterError):
            AdaptiveConfig(ci_target=0.05, min_trials=0)
        with pytest.raises(InvalidParameterError):
            AdaptiveConfig(ci_target=0.05, min_trials=4, max_trials=3)
        with pytest.raises(InvalidParameterError):
            AdaptiveConfig(ci_target=0.05, confidence=0.0)

    def test_resolved_fills_max_trials_from_the_sweep(self):
        config = AdaptiveConfig(ci_target=0.05, min_trials=2)
        resolved = config.resolved(7)
        assert resolved.max_trials == 7
        assert resolved.ci_target == config.ci_target
        # Already-resolved configs pass through unchanged.
        assert resolved.resolved(3) is resolved

    def test_resolved_rejects_budget_below_min_trials(self):
        with pytest.raises(InvalidParameterError):
            AdaptiveConfig(ci_target=0.05, min_trials=5).resolved(3)


# --------------------------------------------------------------------- #
# allocation ledger
# --------------------------------------------------------------------- #
def _ledger(records=None, **overrides):
    parameters = dict(
        pairs=200,
        base_seed=77,
        config=AdaptiveConfig(ci_target=0.03, min_trials=2, max_trials=8),
        records=records
        if records is not None
        else (
            (SweepPoint("xor", 8, 0.3), 8),
            (SweepPoint("xor", 8, 0.7), 2),
            (SweepPoint("xor", 8, 0.5, model="targeted"), 5),
        ),
    )
    parameters.update(overrides)
    return AllocationLedger(**parameters)


class TestAllocationLedger:
    def test_text_round_trip_is_exact(self):
        ledger = _ledger()
        text = ledger.dumps()
        assert text.startswith("# rcm-adaptive-allocation v1\n")
        reloaded = AllocationLedger.loads(text)
        assert reloaded == ledger
        assert reloaded.dumps() == text

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "allocation.txt"
        ledger = _ledger()
        ledger.save(path)
        assert AllocationLedger.load(path) == ledger

    def test_q_survives_via_repr(self):
        # 0.1 has no exact binary representation; repr round-trips it.
        ledger = _ledger(records=((SweepPoint("tree", 6, 0.1), 3),))
        reloaded = AllocationLedger.loads(ledger.dumps())
        assert reloaded.records[0][0].q == 0.1

    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("", "expected leading"),
            ("# rcm-churn-trace v1\npairs=1 base_seed=0\n", "expected leading"),
            ("# rcm-adaptive-allocation v1\n", "missing its parameter line"),
            (
                "# rcm-adaptive-allocation v1\npairs=10 base_seed=0 ci_target=0.05\n",
                "missing",
            ),
            (
                "# rcm-adaptive-allocation v1\npairs ten\n",
                "malformed ledger parameter",
            ),
            (
                "# rcm-adaptive-allocation v1\n"
                "pairs=10 base_seed=0 ci_target=0.05 min_trials=2 max_trials=4 confidence=0.95\n"
                "xor 8 0.3 uniform\n",
                "malformed ledger row",
            ),
            (
                "# rcm-adaptive-allocation v1\n"
                "pairs=10 base_seed=0 ci_target=0.05 min_trials=2 max_trials=4 confidence=0.95\n"
                "xor eight 0.3 uniform 2\n",
                "malformed ledger row",
            ),
        ],
    )
    def test_rejects_malformed_text(self, text, fragment):
        with pytest.raises(InvalidParameterError, match=fragment):
            AllocationLedger.loads(text)

    def test_rejects_rows_beyond_the_budget(self):
        with pytest.raises(InvalidParameterError, match="beyond max_trials"):
            _ledger(records=((SweepPoint("xor", 8, 0.3), 9),))

    def test_rejects_repeated_points(self):
        with pytest.raises(InvalidParameterError, match="repeats point"):
            _ledger(
                records=(
                    (SweepPoint("xor", 8, 0.3), 2),
                    (SweepPoint("xor", 8, 0.3), 4),
                )
            )

    def test_requires_a_resolved_config(self):
        with pytest.raises(InvalidParameterError, match="resolved config"):
            _ledger(config=AdaptiveConfig(ci_target=0.03))


# --------------------------------------------------------------------- #
# the allocator loop (synthetic cells: no simulation, exact control)
# --------------------------------------------------------------------- #
def _fake_run_cells(successes_per_cell, pairs=100):
    """A run_cells callback with scripted per-replicate success counts.

    ``successes_per_cell[q]`` is a list indexed by replicate; ``None``
    scripts a degenerate cell (zero attempts).
    """

    def run_cells(batch):
        outcome = {}
        for cell in batch:
            successes = successes_per_cell[cell.q][cell.replicate]
            if successes is None:
                metrics = RoutingMetrics(
                    attempts=0,
                    successes=0,
                    mean_hops_successful=float("nan"),
                    mean_hops_failed=float("nan"),
                    failure_reasons={},
                )
                outcome[cell] = SweepCellResult(
                    cell=cell, pairs=pairs, metrics=metrics, degenerate=True
                )
                continue
            metrics = RoutingMetrics(
                attempts=pairs,
                successes=successes,
                mean_hops_successful=3.0,
                mean_hops_failed=2.0,
                failure_reasons={},
            )
            outcome[cell] = SweepCellResult(cell=cell, pairs=pairs, metrics=metrics)
        return outcome

    return run_cells


class TestRunAllocation:
    def test_low_variance_points_freeze_early(self):
        # q=0.1 always succeeds (half-width collapses immediately); q=0.5 is
        # a fair coin and must run to the budget cap.
        script = {0.1: [100] * 8, 0.5: [50] * 8}
        points = [SweepPoint("xor", 8, 0.1), SweepPoint("xor", 8, 0.5)]
        config = AdaptiveConfig(ci_target=0.03, min_trials=2, max_trials=8)
        results, report = run_allocation(points, _fake_run_cells(script), config)
        by_q = {allocation.point.q: allocation for allocation in report.allocations}
        assert by_q[0.1].trials == 2
        assert by_q[0.1].frozen_by == "ci"
        assert by_q[0.5].trials == 8
        assert by_q[0.5].frozen_by == "budget"
        assert len(results[points[0]]) == 2
        assert len(results[points[1]]) == 8
        assert report.trials_allocated == 10
        assert report.trials_uniform == 16
        assert report.trials_saved == 6
        assert all(allocation.frozen_by in FREEZE_REASONS for allocation in report.allocations)

    def test_rounds_grow_one_replicate_at_a_time(self):
        # min_trials=3 then +1 per round until the cap: replicate indices
        # must be exactly 0..k-1 in order (the uniform grid's prefix).
        seen = []
        script = {0.5: [50] * 6}

        def run_cells(batch):
            seen.append([cell.replicate for cell in batch])
            return _fake_run_cells(script)(batch)

        config = AdaptiveConfig(ci_target=0.001, min_trials=3, max_trials=6)
        run_allocation([SweepPoint("xor", 8, 0.5)], run_cells, config)
        assert seen == [[0, 1, 2], [3], [4], [5]]

    def test_degenerate_points_freeze_after_the_first_round(self):
        script = {0.99: [None, None, None, None], 0.2: [90, 91, 92, 93]}
        points = [SweepPoint("ring", 4, 0.99), SweepPoint("ring", 4, 0.2)]
        config = AdaptiveConfig(ci_target=0.001, min_trials=2, max_trials=4)
        results, report = run_allocation(points, _fake_run_cells(script), config)
        degenerate = report.allocations[0]
        assert degenerate.point.q == 0.99
        assert degenerate.trials == 2  # exactly min_trials, never re-drawn
        assert degenerate.frozen_by == "degenerate"
        assert degenerate.attempts == 0
        assert degenerate.halfwidth is None
        assert report.as_rows()[0]["ci_halfwidth"] is None
        assert all(result.degenerate for result in results[points[0]])
        # The measured point keeps consuming budget normally.
        assert report.allocations[1].frozen_by == "budget"

    def test_report_rows_and_ledger_agree(self):
        script = {0.3: [80] * 5, 0.6: [40] * 5}
        points = [SweepPoint("tree", 6, 0.3), SweepPoint("tree", 6, 0.6)]
        config = AdaptiveConfig(ci_target=0.02, min_trials=2, max_trials=5)
        _, report = run_allocation(points, _fake_run_cells(script), config)
        ledger = report.ledger(pairs=100, base_seed=11)
        assert ledger.trials_by_point() == {
            ("tree", 6, repr(0.3), "uniform"): report.allocations[0].trials,
            ("tree", 6, repr(0.6), "uniform"): report.allocations[1].trials,
        }
        rows = report.as_rows()
        assert [row["trials"] for row in rows] == [
            allocation.trials for allocation in report.allocations
        ]

    def test_replay_runs_exactly_the_recorded_cells(self):
        script = {0.3: [80] * 5, 0.6: [40] * 5}
        points = [SweepPoint("tree", 6, 0.3), SweepPoint("tree", 6, 0.6)]
        config = AdaptiveConfig(ci_target=0.02, min_trials=2, max_trials=5)
        results, report = run_allocation(points, _fake_run_cells(script), config)
        ledger = report.ledger(pairs=100, base_seed=11)

        replayed_results, replayed_report = run_allocation(
            points, _fake_run_cells(script), config, replay=ledger
        )
        assert replayed_report.replayed is True
        assert replayed_report.rounds == 1
        for point in points:
            assert replayed_results[point] == results[point]
        for original, replayed in zip(report.allocations, replayed_report.allocations):
            assert replayed.trials == original.trials
            assert replayed.attempts == original.attempts
            assert replayed.successes == original.successes
            assert replayed.frozen_by == "replay"

    def test_replay_rejects_mismatched_grids(self):
        ledger = _ledger(records=((SweepPoint("xor", 8, 0.3), 2),))
        config = ledger.config
        with pytest.raises(InvalidParameterError, match="no row for point"):
            run_allocation(
                [SweepPoint("xor", 8, 0.9)], _fake_run_cells({}), config, replay=ledger
            )
        with pytest.raises(InvalidParameterError, match="must match the recorded one"):
            run_allocation(
                [SweepPoint("xor", 8, 0.3, model="targeted")],
                _fake_run_cells({}),
                config,
                replay=ledger,
            )

    def test_rejects_bad_inputs(self):
        config = AdaptiveConfig(ci_target=0.05, min_trials=2, max_trials=4)
        with pytest.raises(InvalidParameterError, match="must not be empty"):
            run_allocation([], _fake_run_cells({}), config)
        point = SweepPoint("xor", 8, 0.5)
        with pytest.raises(InvalidParameterError, match="distinct"):
            run_allocation([point, point], _fake_run_cells({}), config)
        with pytest.raises(InvalidParameterError, match="resolved"):
            run_allocation([point], _fake_run_cells({}), AdaptiveConfig(ci_target=0.05))


# --------------------------------------------------------------------- #
# engine integration: stream discipline, stores, replay
# --------------------------------------------------------------------- #
GEOMETRY = "xor"
D = 6
QS = [0.1, 0.45, 0.97]
PAIRS = 60
MAX_TRIALS = 4
CONFIG = AdaptiveConfig(ci_target=0.06, min_trials=2, max_trials=MAX_TRIALS)


def _pool_prefix(cell_results, q, k, model="uniform"):
    """Pooled (attempts, successes) of the uniform grid's first k replicates."""
    attempts = successes = 0
    for replicate in range(k):
        result = cell_results[
            SweepCell(geometry=GEOMETRY, d=D, q=q, replicate=replicate, model=model)
        ]
        attempts += result.metrics.attempts
        successes += result.metrics.successes
    return attempts, successes


class TestEngineStreamDiscipline:
    @pytest.mark.parametrize("workers", [1, 3, 4])
    @pytest.mark.parametrize("fused", [True, False])
    def test_adaptive_rows_pool_the_uniform_prefix(self, workers, fused):
        # The adaptive sweep's every point must pool exactly the uniform
        # grid's first-k cells — for any worker count and both dispatch
        # modes, because rounds are replicate indices, not fresh draws.
        with SweepRunner(
            pairs=PAIRS, replicates=MAX_TRIALS, workers=workers, fused=fused
        ) as runner:
            uniform_cells = runner.run([GEOMETRY], D, QS)
            adaptive = runner.sweep(GEOMETRY, D, QS, adaptive=CONFIG)
            report = runner.last_adaptive_report
        assert report is not None and not report.replayed
        for result, allocation in zip(adaptive.results, report.allocations):
            attempts, successes = _pool_prefix(uniform_cells, result.q, allocation.trials)
            assert result.metrics.attempts == attempts == allocation.attempts
            assert result.metrics.successes == successes == allocation.successes
            assert result.trials == allocation.trials

    def test_identical_rows_across_workers_and_dispatch_modes(self):
        reference = None
        for workers, fused in [(1, True), (3, True), (4, False)]:
            with SweepRunner(
                pairs=PAIRS, replicates=MAX_TRIALS, workers=workers, fused=fused
            ) as runner:
                rows = runner.sweep(GEOMETRY, D, QS, adaptive=CONFIG).as_rows()
                schedule = runner.last_adaptive_report.as_rows()
            if reference is None:
                reference = (rows, schedule)
            else:
                assert (rows, schedule) == reference

    def test_uniform_sweep_is_untouched_by_the_adaptive_import(self):
        # adaptive=None must leave rows identical to a runner that never
        # heard of adaptive sampling (fresh instance, no adaptive call).
        with SweepRunner(pairs=PAIRS, replicates=MAX_TRIALS) as runner:
            before = runner.sweep(GEOMETRY, D, QS)
            runner.sweep(GEOMETRY, D, QS, adaptive=CONFIG)
            after = runner.sweep(GEOMETRY, D, QS)
            assert runner.last_adaptive_report is None  # reset by the uniform sweep
        assert before.as_rows() == after.as_rows()


class TestEngineAdaptiveBehaviour:
    def test_degenerate_point_freezes_at_min_trials_and_serializes_null(self):
        # d=2 ring at q=0.97: almost every trial kills all four nodes. The
        # regression this pins: degenerate points must freeze immediately
        # instead of soaking up the whole reallocated budget, and their rows
        # must serialize None (not NaN) exactly like the uniform sweep's.
        with SweepRunner(pairs=10, replicates=6) as runner:
            sweep = runner.sweep("ring", 2, [0.97], adaptive=AdaptiveConfig(
                ci_target=0.01, min_trials=2, max_trials=6
            ))
            report = runner.last_adaptive_report
        allocation = report.allocations[0]
        if allocation.attempts == 0:
            assert allocation.frozen_by == "degenerate"
            assert allocation.trials == 2
            assert allocation.halfwidth is None
            row = sweep.as_rows()[0]
            assert row["routability"] is None
            assert row["attempts"] == 0

    def test_store_hits_pool_into_the_ci(self, tmp_path):
        # A fully cached grid must freeze without computing a single cell:
        # store hits carry the same bytes as fresh computation, so the CI
        # sees them identically.
        from repro.service.store import ResultStore

        with ResultStore.open(tmp_path / "cells.db") as store:
            with SweepRunner(
                pairs=PAIRS, replicates=MAX_TRIALS, cell_store=store
            ) as runner:
                fresh = runner.sweep(GEOMETRY, D, QS, adaptive=CONFIG)
                assert runner.last_run_stats.computed > 0
            with SweepRunner(
                pairs=PAIRS, replicates=MAX_TRIALS, cell_store=store
            ) as runner:
                cached = runner.sweep(GEOMETRY, D, QS, adaptive=CONFIG)
                stats = runner.last_run_stats
        assert stats.computed == 0
        assert stats.store_hits == stats.requested > 0
        assert cached.as_rows() == fresh.as_rows()

    def test_ledger_replay_reproduces_rows_bit_identically(self, tmp_path):
        path = tmp_path / "allocation.txt"
        with SweepRunner(pairs=PAIRS, replicates=MAX_TRIALS) as runner:
            adaptive = runner.sweep(GEOMETRY, D, QS, adaptive=CONFIG)
            runner.last_allocation_ledger().save(path)
        with SweepRunner(pairs=PAIRS, replicates=MAX_TRIALS) as runner:
            replayed = runner.sweep(
                GEOMETRY, D, QS, replay_allocation=AllocationLedger.load(path)
            )
            report = runner.last_adaptive_report
        assert report.replayed is True
        assert replayed.as_rows() == adaptive.as_rows()
        for left, right in zip(adaptive.results, replayed.results):
            assert left.metrics.attempts == right.metrics.attempts
            assert left.metrics.successes == right.metrics.successes
            assert left.metrics.failure_reasons == right.metrics.failure_reasons

    def test_replay_rejects_mismatched_identity_parameters(self):
        with SweepRunner(pairs=PAIRS, replicates=MAX_TRIALS) as runner:
            runner.sweep(GEOMETRY, D, QS, adaptive=CONFIG)
            ledger = runner.last_allocation_ledger()
        with SweepRunner(pairs=PAIRS + 1, replicates=MAX_TRIALS) as runner:
            with pytest.raises(InvalidParameterError, match="bit-identical"):
                runner.sweep(GEOMETRY, D, QS, replay_allocation=ledger)

    def test_adaptive_and_replay_are_mutually_exclusive(self):
        with SweepRunner(pairs=PAIRS, replicates=MAX_TRIALS) as runner:
            runner.sweep(GEOMETRY, D, QS, adaptive=CONFIG)
            ledger = runner.last_allocation_ledger()
            with pytest.raises(InvalidParameterError, match="not both"):
                runner.sweep(
                    GEOMETRY, D, QS, adaptive=CONFIG, replay_allocation=ledger
                )

    def test_ledger_accessor_is_none_after_a_uniform_sweep(self):
        with SweepRunner(pairs=PAIRS, replicates=2) as runner:
            runner.sweep(GEOMETRY, D, [0.2])
            assert runner.last_allocation_ledger() is None
            assert runner.last_adaptive_report is None


# --------------------------------------------------------------------- #
# overlay-level API (static_resilience)
# --------------------------------------------------------------------- #
class TestOverlayLevelAdaptive:
    def test_sweep_failure_probabilities_accepts_adaptive(self):
        from repro.sim.static_resilience import build_overlay, sweep_failure_probabilities

        overlay = build_overlay(GEOMETRY, D, seed=5)
        uniform = sweep_failure_probabilities(
            overlay, QS, pairs=PAIRS, trials=MAX_TRIALS, seed=123
        )
        adaptive = sweep_failure_probabilities(
            overlay, QS, pairs=PAIRS, trials=MAX_TRIALS, seed=123, adaptive=CONFIG
        )
        assert [result.q for result in adaptive.results] == QS
        # Frozen-early points pool fewer attempts; none pool more.
        for uniform_result, adaptive_result in zip(uniform.results, adaptive.results):
            assert adaptive_result.metrics.attempts <= uniform_result.metrics.attempts

    def test_overlay_level_adaptive_requires_batch_engine_and_integer_seed(self):
        from repro.sim.static_resilience import build_overlay, sweep_failure_probabilities

        overlay = build_overlay(GEOMETRY, D, seed=5)
        with pytest.raises(InvalidParameterError, match="batch engine"):
            sweep_failure_probabilities(
                overlay, QS, pairs=PAIRS, trials=MAX_TRIALS, engine="scalar",
                adaptive=CONFIG,
            )
        with pytest.raises(InvalidParameterError, match="integer seed"):
            sweep_failure_probabilities(
                overlay, QS, pairs=PAIRS, trials=MAX_TRIALS,
                rng=np.random.default_rng(3), adaptive=CONFIG,
            )

    def test_simulate_geometry_threads_adaptive_through(self):
        from repro.sim.static_resilience import simulate_geometry

        result = simulate_geometry(
            GEOMETRY, D, QS, pairs=PAIRS, trials=MAX_TRIALS, seed=9, adaptive=CONFIG
        )
        assert [point.q for point in result.results] == QS
        trials = [point.trials for point in result.results]
        assert all(2 <= t <= MAX_TRIALS for t in trials)
