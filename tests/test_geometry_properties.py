"""Property-based tests (hypothesis) on invariants every routing geometry must satisfy.

The monotonicity properties are asserted on the parameter regimes the paper
plots (moderate failure probabilities, at least a few hundred nodes).  Very
small populations combined with extreme failure probabilities push the
expectation-ratio approximation of Eq. 1 outside its intended regime (the
expected survivor count approaches one node), where monotonicity genuinely
breaks down — that boundary behaviour is covered by targeted unit tests
instead.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import get_geometry
from repro.core.geometries import PAPER_GEOMETRIES

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
interior_probabilities = st.floats(min_value=0.01, max_value=0.95, allow_nan=False)
moderate_probabilities = st.floats(min_value=0.01, max_value=0.6, allow_nan=False)
identifier_lengths = st.integers(min_value=2, max_value=24)
moderate_identifier_lengths = st.integers(min_value=10, max_value=24)
geometry_names = st.sampled_from(PAPER_GEOMETRIES)


@given(geometry_names, probabilities, identifier_lengths)
@settings(max_examples=120, deadline=None)
def test_routability_is_always_a_probability(name, q, d):
    value = get_geometry(name).routability(q, d=d)
    assert 0.0 <= value <= 1.0
    assert not math.isnan(value)


@given(geometry_names, interior_probabilities, identifier_lengths, st.integers(min_value=1, max_value=24))
@settings(max_examples=120, deadline=None)
def test_phase_failure_is_always_a_probability(name, q, d, m):
    value = get_geometry(name).phase_failure_probability(m, q, d)
    assert 0.0 <= value <= 1.0


@given(geometry_names, identifier_lengths)
@settings(max_examples=60, deadline=None)
def test_distance_distribution_sums_to_population(name, d):
    counts = get_geometry(name).distance_distribution(d)
    assert counts.sum() == pytest.approx(2**d - 1, rel=1e-6)
    assert np.all(counts > 0)


@given(geometry_names, moderate_identifier_lengths, moderate_probabilities, moderate_probabilities)
@settings(max_examples=120, deadline=None)
def test_routability_is_monotone_in_failure_probability(name, d, q1, q2):
    low, high = sorted((q1, q2))
    geometry = get_geometry(name)
    assert geometry.routability(high, d=d) <= geometry.routability(low, d=d) + 1e-9


@given(geometry_names, interior_probabilities, st.integers(min_value=1, max_value=20))
@settings(max_examples=120, deadline=None)
def test_path_success_is_monotone_in_distance(name, q, h):
    geometry = get_geometry(name)
    d = 24
    longer = geometry.path_success_probability(h + 1, q, d)
    shorter = geometry.path_success_probability(h, q, d)
    assert longer <= shorter + 1e-12


@given(
    st.sampled_from(("tree", "smallworld")),
    st.floats(min_value=0.05, max_value=0.7),
    st.integers(min_value=6, max_value=20),
)
@settings(max_examples=80, deadline=None)
def test_unscalable_geometries_degrade_with_size(name, q, d):
    geometry = get_geometry(name)
    assert geometry.routability(q, d=2 * d) <= geometry.routability(q, d=d) + 1e-9


@given(
    st.sampled_from(("hypercube", "xor", "ring")),
    st.floats(min_value=0.01, max_value=0.5),
    st.integers(min_value=8, max_value=20),
)
@settings(max_examples=80, deadline=None)
def test_scalable_geometries_stay_routable_as_size_doubles(name, q, d):
    geometry = get_geometry(name)
    small = geometry.routability(q, d=d)
    large = geometry.routability(q, d=2 * d)
    # Scalable geometries may lose some routability with size (XOR loses the most,
    # about 0.13 around q = 0.5) but never collapse towards zero.
    assert large >= small - 0.2
    assert large > 0.15


@given(interior_probabilities, st.integers(min_value=2, max_value=16))
@settings(max_examples=80, deadline=None)
def test_tree_is_never_better_than_xor_or_hypercube(q, d):
    # Per-phase failure probabilities are ordered Q_hypercube <= Q_xor <= Q_tree = q,
    # so the routability ordering must hold at every size and failure probability.
    tree = get_geometry("tree").routability(q, d=d)
    xor = get_geometry("xor").routability(q, d=d)
    hypercube = get_geometry("hypercube").routability(q, d=d)
    assert tree <= xor + 1e-9
    assert xor <= hypercube + 1e-9


@given(geometry_names, interior_probabilities, st.integers(min_value=2, max_value=20))
@settings(max_examples=80, deadline=None)
def test_expected_reachable_component_is_bounded_by_population(name, q, d):
    geometry = get_geometry(name)
    expected = geometry.expected_reachable_component(d, q)
    assert 0.0 <= expected <= (2**d - 1) * (1.0 + 1e-9)


@given(geometry_names, st.integers(min_value=2, max_value=1 << 20), interior_probabilities)
@settings(max_examples=80, deadline=None)
def test_routability_for_size_is_a_probability(name, n_nodes, q):
    value = get_geometry(name).routability_for_size(n_nodes, q)
    assert 0.0 <= value <= 1.0
