"""Tests for the high-level analytical entry points in repro.core.routability."""

from __future__ import annotations

import pytest

from repro.core.geometry import get_geometry
from repro.core.routability import (
    GeometryCurve,
    compare_geometries,
    expected_reachable_component,
    failed_path_curve,
    failed_path_fraction,
    failed_path_percent,
    routability,
    routability_scaling_curve,
)
from repro.exceptions import InvalidParameterError, UnknownGeometryError


class TestScalarFunctions:
    def test_routability_by_name_matches_geometry_object(self, geometry_name):
        direct = get_geometry(geometry_name).routability(0.3, d=12)
        assert routability(geometry_name, 0.3, d=12) == pytest.approx(direct)

    def test_routability_accepts_geometry_instances(self):
        geometry = get_geometry("xor")
        assert routability(geometry, 0.2, d=10) == pytest.approx(geometry.routability(0.2, d=10))

    def test_routability_rejects_parameters_with_instances(self):
        with pytest.raises(InvalidParameterError):
            routability(get_geometry("smallworld"), 0.2, d=10, near_neighbors=2)

    def test_failed_path_functions_are_complements(self):
        value = routability("ring", 0.25, d=12)
        assert failed_path_fraction("ring", 0.25, d=12) == pytest.approx(1 - value)
        assert failed_path_percent("ring", 0.25, d=12) == pytest.approx(100 * (1 - value))

    def test_unknown_geometry_raises(self):
        with pytest.raises(UnknownGeometryError):
            routability("tapestry-like", 0.1, d=8)

    def test_symphony_parameters_forwarded(self):
        sparse = routability("smallworld", 0.1, d=16)
        dense = routability("smallworld", 0.1, d=16, near_neighbors=3, shortcuts=3)
        assert dense > sparse

    def test_expected_reachable_component_by_size(self):
        direct = get_geometry("hypercube").expected_reachable_component(10, 0.2)
        assert expected_reachable_component("hypercube", 0.2, n_nodes=1024) == pytest.approx(direct)


class TestFailedPathCurve:
    def test_curve_structure(self):
        qs = [0.0, 0.2, 0.4]
        curve = failed_path_curve("tree", qs, d=10)
        assert isinstance(curve, GeometryCurve)
        assert curve.geometry == "tree"
        assert curve.system == "Plaxton"
        assert curve.x_values == tuple(qs)
        assert len(curve.y_values) == 3
        assert curve.y_values[0] == pytest.approx(0.0)

    def test_curve_values_match_scalar_function(self):
        curve = failed_path_curve("xor", [0.1, 0.5], d=12)
        assert curve.y_values[0] == pytest.approx(failed_path_percent("xor", 0.1, d=12))
        assert curve.y_values[1] == pytest.approx(failed_path_percent("xor", 0.5, d=12))

    def test_rows_are_labelled(self):
        rows = failed_path_curve("ring", [0.3], d=8).as_rows()
        assert rows == [{"q": 0.3, "failed_path_percent": pytest.approx(rows[0]["failed_path_percent"])}]

    def test_empty_sweep_rejected(self):
        with pytest.raises(InvalidParameterError):
            failed_path_curve("tree", [], d=8)


class TestScalingCurve:
    def test_curve_structure(self):
        sizes = [16, 256, 4096]
        curve = routability_scaling_curve("hypercube", sizes, q=0.1)
        assert curve.x_values == (16.0, 256.0, 4096.0)
        assert all(0.0 <= value <= 100.0 for value in curve.y_values)

    def test_non_power_of_two_sizes_are_accepted(self):
        curve = routability_scaling_curve("tree", [100, 1000, 10000], q=0.1)
        assert len(curve.y_values) == 3
        # The tree's routability decays with size (unscalable geometry).
        assert curve.y_values[-1] < curve.y_values[0]

    def test_empty_sizes_rejected(self):
        with pytest.raises(InvalidParameterError):
            routability_scaling_curve("tree", [], q=0.1)


class TestCompareGeometries:
    def test_one_row_per_geometry(self):
        rows = compare_geometries(["tree", "xor", "hypercube"], 0.3, d=12)
        assert [row["geometry"] for row in rows] == ["tree", "xor", "hypercube"]
        assert all(0.0 <= row["routability"] <= 1.0 for row in rows)

    def test_scalability_flags_match_verdicts(self):
        rows = compare_geometries(["tree", "ring", "smallworld"], 0.2, d=10)
        flags = {row["geometry"]: row["scalable"] for row in rows}
        assert flags == {"tree": False, "ring": True, "smallworld": False}

    def test_accepts_geometry_instances(self):
        rows = compare_geometries([get_geometry("xor")], 0.1, d=8)
        assert rows[0]["system"] == "Kademlia"

    def test_empty_input_rejected(self):
        with pytest.raises(InvalidParameterError):
            compare_geometries([], 0.1, d=8)
