"""Tests for the tree (Plaxton) geometry closed forms — Section 4.3.1."""

from __future__ import annotations

import math

import pytest

from repro.core.geometries.tree import TreeGeometry
from repro.core.geometry import get_geometry


@pytest.fixture(scope="module")
def tree():
    return TreeGeometry()


class TestIngredients:
    def test_distance_distribution_is_binomial(self, tree):
        counts = tree.distance_distribution(6)
        expected = [math.comb(6, h) for h in range(1, 7)]
        assert counts == pytest.approx(expected)

    def test_phase_failure_is_constant_q(self, tree):
        for m in (1, 3, 10):
            assert tree.phase_failure_probability(m, 0.35, 16) == 0.35

    def test_path_success_closed_form(self, tree):
        for h in (1, 4, 9):
            assert tree.path_success_probability(h, 0.2, 16) == pytest.approx(0.8**h)


class TestClosedFormRoutability:
    @pytest.mark.parametrize("d", [4, 8, 16])
    @pytest.mark.parametrize("q", [0.05, 0.3, 0.6, 0.9])
    def test_matches_generic_rcm_evaluation(self, tree, d, q):
        assert tree.closed_form_routability(d, q) == pytest.approx(
            tree.routability(q, d=d), rel=1e-9
        )

    def test_matches_direct_binomial_sum(self, tree):
        d, q = 10, 0.3
        expected = sum(math.comb(d, h) * (1 - q) ** h for h in range(1, d + 1)) / (
            (1 - q) * 2**d - 1
        )
        assert tree.closed_form_routability(d, q) == pytest.approx(expected, rel=1e-9)

    def test_edge_cases(self, tree):
        assert tree.closed_form_routability(10, 0.0) == 1.0
        assert tree.closed_form_routability(10, 1.0) == 0.0

    def test_asymptotic_collapse(self, tree):
        # Unscalability in numbers: routability at q = 0.1 collapses as d grows.
        assert tree.routability(0.1, d=100) < 0.01
        assert tree.routability(0.1, d=16) > 0.4


class TestVerdict:
    def test_declared_unscalable(self, tree):
        verdict = tree.scalability()
        assert verdict.scalable is False
        assert "diverges" in verdict.series_behaviour

    def test_registry_alias(self):
        assert isinstance(get_geometry("plaxton"), TreeGeometry)
