"""End-to-end tests of the sweep service (``rcm serve``).

The smoke tests run the real stdlib asyncio HTTP server on an ephemeral
port and speak real HTTP/1.1 through ``http.client``; the cache tests
prove the acceptance property — a resubmitted grid performs **zero**
kernel executions and returns bit-identical results — by failing the
kernel entry points outright on the second service instance.
"""

from __future__ import annotations

import asyncio
import contextlib
import http.client
import json
import threading
import time

import pytest

from repro.exceptions import ServiceError
from repro.service.app import ServiceConfig, SweepService, create_asgi_app
from repro.sim.engine import SweepRunner

#: Small but real sweep settings shared by the whole module.
PAIRS, TRIALS, SEED = 40, 2, 11
GRID = {"geometries": ["ring"], "d": 6, "q": [0.1, 0.3]}


def _config(store_path, **overrides) -> ServiceConfig:
    settings = dict(
        store_path=str(store_path), port=0, pairs=PAIRS, trials=TRIALS, seed=SEED
    )
    settings.update(overrides)
    return ServiceConfig(**settings)


@contextlib.contextmanager
def running_service(store_path, **overrides):
    """Run a real SweepService on an ephemeral port; yields ``(port, service)``."""
    service = SweepService(_config(store_path, **overrides))
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, name="rcm-test-server", daemon=True)
    thread.start()
    server = asyncio.run_coroutine_threadsafe(service.start_server(), loop).result(timeout=10)
    try:
        yield server.sockets[0].getsockname()[1], service
    finally:
        async def _shutdown():
            server.close()
            await server.wait_closed()

        asyncio.run_coroutine_threadsafe(_shutdown(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()
        service.close()


def request(port, method, path, body=None, raw_body=None):
    """One HTTP request; returns ``(status, parsed-or-text body)``."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        payload = raw_body if raw_body is not None else (
            json.dumps(body).encode() if body is not None else None
        )
        connection.request(method, path, body=payload)
        response = connection.getresponse()
        raw = response.read()
        if response.headers.get_content_type() == "application/json":
            return response.status, json.loads(raw)
        return response.status, raw.decode()
    finally:
        connection.close()


def wait_for_state(port, job_id, states=("done", "failed"), timeout=60.0):
    """Poll the status route until the job settles; returns the status document."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload = request(port, "GET", f"/v1/jobs/{job_id}")
        assert status == 200, payload
        if payload["state"] in states:
            return payload
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not settle within {timeout}s")


def direct_rows():
    """The reference: the same grid through SweepRunner, no service, no store."""
    with SweepRunner(pairs=PAIRS, replicates=TRIALS, base_seed=SEED) as runner:
        return runner.sweep(GRID["geometries"][0], GRID["d"], GRID["q"]).as_rows()


class TestEndToEndSmoke:
    def test_submit_poll_results_matches_sweeprunner_bit_for_bit(self, tmp_path):
        with running_service(tmp_path / "cells.db") as (port, _service):
            status, accepted = request(port, "POST", "/v1/sweeps", body=GRID)
            assert status == 202
            job_id = accepted["job_id"]
            assert accepted["links"]["status"] == f"/v1/jobs/{job_id}"

            final = wait_for_state(port, job_id)
            assert final["state"] == "done"
            assert final["cells"] == {"total": 4, "done": 4, "cached": 0, "computed": 4}
            shards = final["shards"]
            assert shards["total"] == 1 and shards["done"] == 1
            assert shards["failed"] == 0 and shards["cancelled"] == 0
            assert shards["retries"] == 0
            (shard_state,) = shards["states"]
            assert shard_state["state"] == "done"
            assert shard_state["attempts"] == 1
            assert shard_state["error"] is None

            status, results = request(port, "GET", f"/v1/jobs/{job_id}/results")
            assert status == 200
            (shard,) = results["results"]
            assert shard["geometry"] == "ring"
            assert shard["failure_model"] == "uniform"
            assert shard["rows"] == direct_rows()

    def test_job_listing_and_health_and_metrics(self, tmp_path):
        with running_service(tmp_path / "cells.db") as (port, _service):
            _, accepted = request(port, "POST", "/v1/sweeps", body=GRID)
            wait_for_state(port, accepted["job_id"])

            status, listing = request(port, "GET", "/v1/jobs")
            assert status == 200
            assert [job["job_id"] for job in listing["jobs"]] == [accepted["job_id"]]

            status, health = request(port, "GET", "/healthz")
            assert status == 200
            assert health["status"] == "ok"
            assert health["jobs"]["done"] == 1
            assert health["store"]["cells"] == 4

            status, metrics = request(port, "GET", "/metrics")
            assert status == 200
            assert 'rcm_jobs_total{state="done"} 1' in metrics
            assert "rcm_cells_computed_total 4" in metrics
            assert "rcm_store_cells 4" in metrics

    def test_stream_replays_shards_then_ends(self, tmp_path):
        with running_service(tmp_path / "cells.db") as (port, _service):
            _, accepted = request(port, "POST", "/v1/sweeps", body=GRID)
            status, ndjson = request(port, "GET", f"/v1/jobs/{accepted['job_id']}/stream")
            assert status == 200
            events = [json.loads(line) for line in ndjson.splitlines()]
            assert [event["event"] for event in events] == ["shard", "end"]
            assert events[0]["result"]["rows"] == direct_rows()
            assert events[1]["status"]["state"] == "done"

    def test_openapi_document_matches_the_route_table(self, tmp_path):
        from repro.service.apidocs import generate_openapi
        from repro.service.routes import build_routes

        with running_service(tmp_path / "cells.db") as (port, _service):
            status, document = request(port, "GET", "/openapi.json")
        assert status == 200
        assert document == generate_openapi(build_routes(None))


class TestCacheSemantics:
    def test_resubmitted_grid_computes_zero_cells(self, tmp_path):
        store_path = tmp_path / "cells.db"
        with running_service(store_path) as (port, _service):
            _, first = request(port, "POST", "/v1/sweeps", body=GRID)
            wait_for_state(port, first["job_id"])
            _, second = request(port, "POST", "/v1/sweeps", body=GRID)
            final = wait_for_state(port, second["job_id"])
        assert final["cells"]["computed"] == 0
        assert final["cells"]["cached"] == 4

    def test_fresh_service_serves_the_grid_with_zero_kernel_executions(
        self, tmp_path, monkeypatch
    ):
        """The acceptance property: a new service instance (fresh process
        stand-in) on the same store must answer the identical grid without
        executing a single kernel, bit-identically."""
        store_path = tmp_path / "cells.db"
        with running_service(store_path) as (port, _service):
            _, accepted = request(port, "POST", "/v1/sweeps", body=GRID)
            wait_for_state(port, accepted["job_id"])
            _, results = request(port, "GET", f"/v1/jobs/{accepted['job_id']}/results")
        first_rows = results["results"][0]["rows"]
        assert first_rows == direct_rows()

        def _no_kernels(self, pending):
            raise AssertionError(f"kernel execution attempted for {len(pending)} cells")

        monkeypatch.setattr(SweepRunner, "_run_fused", _no_kernels)
        monkeypatch.setattr(SweepRunner, "_run_per_cell", _no_kernels)

        with SweepService(_config(store_path)) as service:
            job = service.jobs.submit(GRID)
            deadline = time.monotonic() + 60
            while job.state not in ("done", "failed") and time.monotonic() < deadline:
                time.sleep(0.05)
            status = job.status_payload()
            assert status["state"] == "done", status["error"]
            assert status["cells"]["computed"] == 0
            assert status["cells"]["cached"] == 4
            assert job.results_payload()["results"][0]["rows"] == first_rows


class TestChurnSubmissions:
    """Churn sweeps: one trace-driven shard per geometry, no static q grid."""

    BODY = {
        "geometries": ["ring", "xor"],
        "d": 6,
        "churn": {
            "generator": "markov",
            "steps": 5,
            "leave_probability": 0.1,
            "rejoin_probability": 0.05,
            "pairs_per_step": 30,
            "repair_every": 2,
        },
    }

    def test_churn_job_runs_one_shard_per_geometry(self, tmp_path):
        with running_service(tmp_path / "cells.db") as (port, _service):
            status, accepted = request(port, "POST", "/v1/sweeps", body=self.BODY)
            assert status == 202
            final = wait_for_state(port, accepted["job_id"])
            assert final["state"] == "done"
            assert final["cells"]["total"] == 10  # 2 geometries x 5 steps
            assert final["cells"]["done"] == 10

            status, results = request(
                port, "GET", f"/v1/jobs/{accepted['job_id']}/results"
            )
            assert status == 200
            shards = results["results"]
            assert sorted(shard["geometry"] for shard in shards) == ["ring", "xor"]
            for shard in shards:
                assert shard["failure_model"] == "churn"
                assert shard["churn"]["generator"] == "markov"
                assert len(shard["rows"]) == 5
                assert all(row["effective_q"] is None for row in shard["rows"])
                assert all("usable_fraction" in row for row in shard["rows"])

    def test_churn_results_are_deterministic_across_submissions(self, tmp_path):
        payloads = []
        for run in range(2):
            with running_service(tmp_path / f"cells-{run}.db") as (port, _service):
                _, accepted = request(port, "POST", "/v1/sweeps", body=self.BODY)
                wait_for_state(port, accepted["job_id"])
                _, results = request(
                    port, "GET", f"/v1/jobs/{accepted['job_id']}/results"
                )
                payloads.append(
                    sorted(results["results"], key=lambda shard: shard["geometry"])
                )
        assert payloads[0] == payloads[1]

    def test_pareto_generator_accepted(self, tmp_path):
        body = {
            "geometries": ["ring"],
            "d": 6,
            "churn": {"generator": "pareto", "steps": 3, "mean_offline": 8.0},
        }
        with running_service(tmp_path / "cells.db") as (port, _service):
            status, accepted = request(port, "POST", "/v1/sweeps", body=body)
            assert status == 202
            final = wait_for_state(port, accepted["job_id"])
            assert final["state"] == "done"
            assert final["cells"]["total"] == 3

    def test_invalid_churn_bodies_rejected_400(self, tmp_path):
        with running_service(tmp_path / "cells.db") as (port, _service):
            for bad_churn in (
                {"generator": "weibull", "steps": 3},  # unknown generator
                {"generator": "markov"},  # missing steps
                {"generator": "markov", "steps": 3, "surprise": 1},  # unknown key
            ):
                body = {"geometries": ["ring"], "d": 6, "churn": bad_churn}
                status, payload = request(port, "POST", "/v1/sweeps", body=body)
                assert status == 400, bad_churn
                assert "invalid sweep request" in payload["error"]

    def test_missing_q_without_churn_rejected_400(self, tmp_path):
        with running_service(tmp_path / "cells.db") as (port, _service):
            status, payload = request(
                port, "POST", "/v1/sweeps", body={"geometries": ["ring"], "d": 6}
            )
            assert status == 400
            assert "'q' is required unless 'churn' is given" in payload["error"]


class TestErrorPaths:
    def test_semantically_invalid_grid_fails_the_job_with_409_results(self, tmp_path):
        with running_service(tmp_path / "cells.db") as (port, _service):
            status, accepted = request(
                port, "POST", "/v1/sweeps", body={**GRID, "geometries": ["pastry"]}
            )
            assert status == 202  # structurally fine; fails asynchronously
            final = wait_for_state(port, accepted["job_id"])
            assert final["state"] == "failed"
            assert "UnknownGeometryError" in final["error"]

            status, payload = request(port, "GET", f"/v1/jobs/{accepted['job_id']}/results")
            assert status == 409
            assert "UnknownGeometryError" in payload["error"]

    def test_structurally_invalid_body_is_rejected_400(self, tmp_path):
        with running_service(tmp_path / "cells.db") as (port, _service):
            for bad in (
                {"geometries": [], "d": 6, "q": [0.1]},
                {"geometries": ["ring"], "q": [0.1]},
                {"geometries": ["ring"], "d": 6, "q": [0.1], "unknown_field": 1},
            ):
                status, payload = request(port, "POST", "/v1/sweeps", body=bad)
                assert status == 400, bad
                assert "invalid sweep request" in payload["error"]

    def test_malformed_json_body_is_rejected_400(self, tmp_path):
        with running_service(tmp_path / "cells.db") as (port, _service):
            status, payload = request(port, "POST", "/v1/sweeps", raw_body=b"{not json")
            assert status == 400
            assert "not valid JSON" in payload["error"]

    def test_unknown_job_and_route_and_method(self, tmp_path):
        with running_service(tmp_path / "cells.db") as (port, _service):
            assert request(port, "GET", "/v1/jobs/nope")[0] == 404
            assert request(port, "GET", "/v1/nothing")[0] == 404
            assert request(port, "POST", "/healthz")[0] == 405

    def test_results_of_a_running_job_answer_202(self, tmp_path):
        with running_service(tmp_path / "cells.db") as (port, service):
            job = service.jobs.submit(GRID)
            status, payload = request(port, "GET", f"/v1/jobs/{job.job_id}/results")
            # 202 while queued/running, 200 once done - never an error.
            assert status in (200, 202)
            wait_for_state(port, job.job_id)

    def test_submissions_after_close_are_refused(self, tmp_path):
        service = SweepService(_config(tmp_path / "cells.db"))
        service.close()
        with pytest.raises(ServiceError, match="shutting down"):
            service.jobs.submit(GRID)


class TestAsgiAdapter:
    """The ASGI 3 frontend, driven directly (no ASGI server dependency)."""

    @staticmethod
    def _call(app, method, path, body=None):
        sent = []

        async def receive():
            return {"type": "http.request", "body": body or b"", "more_body": False}

        async def send(message):
            sent.append(message)

        scope = {"type": "http", "method": method, "path": path, "query_string": b""}
        asyncio.run(app(scope, receive, send))
        status = sent[0]["status"]
        payload = b"".join(message.get("body", b"") for message in sent[1:])
        return status, payload

    def test_health_and_submit_through_asgi(self, tmp_path):
        with SweepService(_config(tmp_path / "cells.db")) as service:
            app = create_asgi_app(service)
            status, payload = self._call(app, "GET", "/healthz")
            assert status == 200
            assert json.loads(payload)["status"] == "ok"

            status, payload = self._call(
                app, "POST", "/v1/sweeps", body=json.dumps(GRID).encode()
            )
            assert status == 202
            job_id = json.loads(payload)["job_id"]
            deadline = time.monotonic() + 60
            while service.jobs.get(job_id).state not in ("done", "failed"):
                assert time.monotonic() < deadline
                time.sleep(0.05)
            assert service.jobs.get(job_id).state == "done"

    def test_asgi_rejects_malformed_json(self, tmp_path):
        with SweepService(_config(tmp_path / "cells.db")) as service:
            app = create_asgi_app(service)
            status, payload = self._call(app, "POST", "/v1/sweeps", body=b"{broken")
            assert status == 400
            assert "not valid JSON" in json.loads(payload)["error"]

    def test_asgi_lifespan_protocol(self, tmp_path):
        with SweepService(_config(tmp_path / "cells.db")) as service:
            app = create_asgi_app(service)
            messages = iter(
                [{"type": "lifespan.startup"}, {"type": "lifespan.shutdown"}]
            )
            sent = []

            async def receive():
                return next(messages)

            async def send(message):
                sent.append(message)

            asyncio.run(app({"type": "lifespan"}, receive, send))
            assert [message["type"] for message in sent] == [
                "lifespan.startup.complete",
                "lifespan.shutdown.complete",
            ]


class TestAdaptiveSubmissions:
    """Adaptive trial allocation through the service tier."""

    BODY = {
        "geometries": ["ring"],
        "d": 6,
        "q": [0.1, 0.3],
        "adaptive": {"ci_target": 0.2, "min_trials": 1},
    }

    def direct_adaptive(self):
        from repro.sim.adaptive import AdaptiveConfig

        with SweepRunner(pairs=PAIRS, replicates=TRIALS, base_seed=SEED) as runner:
            sweep = runner.sweep(
                "ring", 6, [0.1, 0.3],
                adaptive=AdaptiveConfig(ci_target=0.2, min_trials=1),
            )
            return sweep.as_rows(), runner.last_adaptive_report

    def test_adaptive_job_reports_the_allocation(self, tmp_path):
        reference_rows, reference_report = self.direct_adaptive()
        with running_service(tmp_path / "cells.db") as (port, _service):
            status, accepted = request(port, "POST", "/v1/sweeps", body=self.BODY)
            assert status == 202
            final = wait_for_state(port, accepted["job_id"])
            assert final["state"] == "done"

            status, results = request(
                port, "GET", f"/v1/jobs/{accepted['job_id']}/results"
            )
            assert status == 200
            (shard,) = results["results"]
            assert shard["rows"] == reference_rows
            adaptive = shard["adaptive"]
            assert adaptive["trials_allocated"] == reference_report.trials_allocated
            assert adaptive["trials_uniform"] == 2 * TRIALS
            assert adaptive["trials_saved"] == reference_report.trials_saved
            assert adaptive["rounds"] == reference_report.rounds
            assert adaptive["points"] == reference_report.as_rows()

            status, metrics = request(port, "GET", "/metrics")
            assert status == 200
            assert (
                f"rcm_adaptive_trials_saved_total {reference_report.trials_saved}"
                in metrics
            )
            assert "rcm_cells_requested_total" in metrics
            assert "rcm_store_hits_total" in metrics

    def test_adaptive_resubmission_is_served_from_the_cache(self, tmp_path):
        with running_service(tmp_path / "cells.db") as (port, _service):
            _, first = request(port, "POST", "/v1/sweeps", body=self.BODY)
            wait_for_state(port, first["job_id"])
            _, first_results = request(port, "GET", f"/v1/jobs/{first['job_id']}/results")

            _, second = request(port, "POST", "/v1/sweeps", body=self.BODY)
            final = wait_for_state(port, second["job_id"])
            _, second_results = request(port, "GET", f"/v1/jobs/{second['job_id']}/results")
        assert final["cells"]["computed"] == 0
        assert second_results["results"] == first_results["results"]

    def test_invalid_adaptive_bodies_rejected_400(self, tmp_path):
        with running_service(tmp_path / "cells.db") as (port, _service):
            for bad_adaptive in (
                {"ci_target": 1.5},  # out of schema range
                {"min_trials": 2},  # missing ci_target
                {"ci_target": 0.1, "surprise": 1},  # unknown key
                {"ci_target": 0.1, "min_trials": 3, "max_trials": 2},  # semantic
            ):
                body = {**self.BODY, "adaptive": bad_adaptive}
                status, payload = request(port, "POST", "/v1/sweeps", body=body)
                assert status == 400, bad_adaptive
                assert "invalid sweep request" in payload["error"]

    def test_adaptive_cannot_be_combined_with_churn(self, tmp_path):
        body = {
            "geometries": ["ring"],
            "d": 6,
            "adaptive": {"ci_target": 0.1},
            "churn": {"generator": "markov", "steps": 3},
        }
        with running_service(tmp_path / "cells.db") as (port, _service):
            status, payload = request(port, "POST", "/v1/sweeps", body=body)
            assert status == 400
            assert "cannot be combined with 'churn'" in payload["error"]
