"""Tests for the ring (Chord) geometry closed forms — Sections 4.3.3 and 5.4."""

from __future__ import annotations

import math

import pytest

from repro.core.geometries.ring import RingGeometry
from repro.core.geometry import get_geometry


@pytest.fixture(scope="module")
def ring():
    return RingGeometry()


def brute_force_q_ring(m: int, q: float) -> float:
    """Direct evaluation of the truncated geometric sum in Section 4.3.3."""
    suboptimal = q * (1.0 - q ** (m - 1))
    return q**m * sum(suboptimal**k for k in range(2 ** (m - 1)))


class TestPhaseFailure:
    @pytest.mark.parametrize("q", [0.05, 0.2, 0.5, 0.8])
    @pytest.mark.parametrize("m", [1, 2, 3, 5, 8])
    def test_matches_brute_force_sum(self, ring, q, m):
        assert ring.phase_failure_probability(m, q, 16) == pytest.approx(
            brute_force_q_ring(m, q), rel=1e-10
        )

    def test_single_phase_reduces_to_q(self, ring):
        assert ring.phase_failure_probability(1, 0.42, 16) == pytest.approx(0.42)

    def test_edge_probabilities(self, ring):
        assert ring.phase_failure_probability(3, 0.0, 16) == 0.0
        assert ring.phase_failure_probability(3, 1.0, 16) == 1.0

    def test_large_m_does_not_overflow(self, ring):
        value = ring.phase_failure_probability(300, 0.5, 400)
        assert 0.0 <= value <= 1.0

    def test_explicit_suboptimal_cap(self):
        capped = RingGeometry(max_suboptimal_hops=2)
        q, m = 0.5, 4
        suboptimal = q * (1.0 - q ** (m - 1))
        expected = q**m * sum(suboptimal**k for k in range(3))
        assert capped.phase_failure_probability(m, q, 16) == pytest.approx(expected, rel=1e-12)
        assert capped.max_suboptimal_hops == 2

    def test_cap_never_exceeds_paper_value(self, ring):
        # A generous explicit cap must reduce to the paper's own 2^(m-1) - 1 cap.
        generous = RingGeometry(max_suboptimal_hops=10**9)
        for m in (2, 3, 4):
            assert generous.phase_failure_probability(m, 0.3, 16) == pytest.approx(
                ring.phase_failure_probability(m, 0.3, 16), rel=1e-12
            )


class TestRelationToXor:
    def test_ring_phase_failure_below_xor(self, ring):
        # Section 5.4: the ring chain dominates the XOR chain phase by phase.
        xor = get_geometry("xor")
        for q in (0.1, 0.4, 0.7):
            for m in range(1, 12):
                assert (
                    ring.phase_failure_probability(m, q, 16)
                    <= xor.phase_failure_probability(m, q, 16) + 1e-12
                )

    def test_ring_routability_above_xor_on_matching_distance_metric(self, ring):
        # The per-phase dominance translates into p_ring(h, q) >= p_xor(h, q).
        xor = get_geometry("xor")
        for q in (0.2, 0.5):
            for h in (2, 5, 10):
                ring_p = math.prod(
                    1 - ring.phase_failure_probability(m, q, 16) for m in range(1, h + 1)
                )
                xor_p = math.prod(
                    1 - xor.phase_failure_probability(m, q, 16) for m in range(1, h + 1)
                )
                assert ring_p >= xor_p - 1e-12


class TestRoutability:
    def test_distance_distribution_is_ring_like(self, ring):
        counts = ring.distance_distribution(6)
        assert counts == pytest.approx([1, 2, 4, 8, 16, 32])

    def test_asymptotically_stable(self, ring):
        small = ring.routability(0.1, d=16)
        large = ring.routability(0.1, d=100)
        assert abs(small - large) < 0.01
        assert large > 0.95

    def test_matches_paper_figure_magnitude(self, ring):
        # Figure 6(b): at q = 0.5 the analytical ring curve predicts roughly half of
        # the paths failing (the simulation does better); sanity-check the magnitude.
        failed_percent = ring.failed_path_percent(0.5, d=16)
        assert 40.0 <= failed_percent <= 70.0


class TestVerdict:
    def test_declared_scalable(self, ring):
        assert ring.scalability().scalable is True
