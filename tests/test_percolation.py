"""Tests for the percolation substrate (connected vs reachable components)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dht import HypercubeOverlay, PlaxtonOverlay
from repro.exceptions import InvalidParameterError
from repro.percolation import (
    component_size_distribution,
    connected_component,
    empirical_routability,
    estimate_critical_failure_probability,
    giant_component_curve,
    largest_component_fraction,
    mean_field_percolation_threshold,
    reachable_component,
)


@pytest.fixture(scope="module")
def cube():
    return HypercubeOverlay.build(5)


@pytest.fixture(scope="module")
def tree_overlay():
    return PlaxtonOverlay.build(5, seed=8)


def all_alive(overlay):
    return np.ones(overlay.n_nodes, dtype=bool)


class TestReachableComponent:
    def test_no_failures_reaches_everyone(self, cube):
        reachable = reachable_component(cube, 0, all_alive(cube))
        assert len(reachable) == cube.n_nodes - 1

    def test_reachable_is_subset_of_connected(self, tree_overlay, rng):
        alive = rng.random(tree_overlay.n_nodes) >= 0.3
        alive[0] = True
        reachable = reachable_component(tree_overlay, 0, alive)
        connected = connected_component(tree_overlay, 0, alive)
        assert reachable <= connected

    def test_strict_routing_reaches_fewer_nodes_than_connectivity(self, tree_overlay, rng):
        # With 30% failures the tree overlay stays largely connected but tree routing
        # cannot reach many of those connected nodes (the paper's Section 1 point).
        alive = rng.random(tree_overlay.n_nodes) >= 0.3
        alive[0] = True
        reachable = reachable_component(tree_overlay, 0, alive)
        connected = connected_component(tree_overlay, 0, alive)
        assert len(reachable) < len(connected)

    def test_dead_root_rejected(self, cube):
        alive = all_alive(cube)
        alive[0] = False
        with pytest.raises(InvalidParameterError):
            reachable_component(cube, 0, alive)

    def test_root_not_included_in_its_own_component(self, cube):
        assert 0 not in reachable_component(cube, 0, all_alive(cube))


class TestComponentSummaries:
    def test_full_survival_is_one_component(self, cube):
        summary = component_size_distribution(cube, all_alive(cube))
        assert summary.survivor_count == cube.n_nodes
        assert summary.largest_component == cube.n_nodes
        assert summary.largest_fraction == 1.0

    def test_total_failure_is_empty(self, cube):
        summary = component_size_distribution(cube, np.zeros(cube.n_nodes, dtype=bool))
        assert summary.survivor_count == 0
        assert summary.largest_fraction == 0.0

    def test_component_sizes_sum_to_survivors(self, cube, rng):
        alive = rng.random(cube.n_nodes) >= 0.4
        summary = component_size_distribution(cube, alive)
        assert sum(summary.component_sizes) == summary.survivor_count

    def test_largest_component_fraction_shortcut(self, cube, rng):
        alive = rng.random(cube.n_nodes) >= 0.2
        assert largest_component_fraction(cube, alive) == pytest.approx(
            component_size_distribution(cube, alive).largest_fraction
        )

    def test_wrong_mask_shape_rejected(self, cube):
        with pytest.raises(InvalidParameterError):
            component_size_distribution(cube, np.ones(3, dtype=bool))


class TestEmpiricalRoutability:
    def test_matches_rcm_at_zero_failure(self, cube):
        assert empirical_routability(cube, all_alive(cube)) == 1.0

    def test_close_to_rcm_prediction_under_failure(self, cube, rng):
        from repro.core.geometry import get_geometry

        q = 0.2
        values = []
        for _ in range(6):
            alive = rng.random(cube.n_nodes) >= q
            if alive.sum() < 2:
                continue
            values.append(empirical_routability(cube, alive))
        measured = float(np.mean(values))
        predicted = get_geometry("hypercube").routability(q, d=cube.d)
        assert measured == pytest.approx(predicted, abs=0.1)

    def test_root_sampling(self, cube, rng):
        alive = rng.random(cube.n_nodes) >= 0.2
        value = empirical_routability(cube, alive, max_roots=5, rng=rng)
        assert 0.0 <= value <= 1.0

    def test_needs_two_survivors(self, cube):
        alive = np.zeros(cube.n_nodes, dtype=bool)
        alive[0] = True
        with pytest.raises(InvalidParameterError):
            empirical_routability(cube, alive)


class TestThresholds:
    def test_mean_field_threshold(self):
        assert mean_field_percolation_threshold(5) == pytest.approx(0.25)

    def test_mean_field_threshold_requires_supercritical_degree(self):
        with pytest.raises(InvalidParameterError):
            mean_field_percolation_threshold(1.0)

    def test_giant_component_curve_is_decreasing_overall(self, cube):
        qs, fractions = giant_component_curve(cube, [0.1, 0.5, 0.9], trials=2, seed=4)
        assert qs == (0.1, 0.5, 0.9)
        assert fractions[0] > fractions[-1]

    def test_critical_failure_probability_estimate(self, cube):
        estimate = estimate_critical_failure_probability(cube, trials=2, seed=4)
        # A degree-5 hypercube keeps its giant component well past 30% failures.
        assert estimate.critical_failure_probability is None or (
            estimate.critical_failure_probability > 0.3
        )
        assert len(estimate.failure_probabilities) == len(estimate.giant_component_fractions)

    def test_empty_sweep_rejected(self, cube):
        with pytest.raises(InvalidParameterError):
            giant_component_curve(cube, [], trials=1, seed=1)
