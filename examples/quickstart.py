#!/usr/bin/env python3
"""Quickstart: analyse the five DHT routing geometries with the RCM framework.

Run with ``python examples/quickstart.py``.  It prints

1. the analytical routability of every geometry at the paper's simulation
   size (N = 2^16) for a few failure probabilities,
2. the Section 5 scalability classification, and
3. a small Monte-Carlo simulation cross-check on a 1024-node overlay.

Everything here uses only the public API of the ``repro`` package.
"""

from __future__ import annotations

from repro import (
    PAPER_GEOMETRIES,
    compare_geometries,
    routability,
    scalability_report,
    simulate_geometry,
)
from repro.report import render_table


def analytical_overview() -> None:
    """Routability of every geometry at N = 2^16 for a few failure probabilities."""
    rows = []
    for q in (0.1, 0.3, 0.5):
        row = {"q": q}
        for geometry in PAPER_GEOMETRIES:
            row[geometry] = routability(geometry, q, d=16)
        rows.append(row)
    print(render_table(rows, title="Analytical routability at N = 2^16 (RCM, Eq. 3)"))
    print()


def scalability_overview() -> None:
    """The paper's scalable/unscalable split, with numerical evidence."""
    rows = scalability_report(list(PAPER_GEOMETRIES))
    print(render_table(rows, title="Scalability classification (Section 5)"))
    print()


def simulation_cross_check() -> None:
    """Measure routability on real (simulated) overlays and compare with the analysis."""
    rows = []
    for geometry in PAPER_GEOMETRIES:
        sweep = simulate_geometry(
            geometry, d=10, failure_probabilities=[0.1, 0.3], pairs=800, trials=2, seed=7
        )
        for result in sweep.results:
            rows.append(
                {
                    "geometry": geometry,
                    "q": result.q,
                    "simulated_routability": result.routability,
                    "analytical_routability": routability(geometry, result.q, d=10),
                }
            )
    print(render_table(rows, title="Simulation vs analysis on a 1024-node overlay"))


def main() -> None:
    analytical_overview()
    scalability_overview()
    simulation_cross_check()


if __name__ == "__main__":
    main()
