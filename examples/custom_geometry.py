#!/usr/bin/env python3
"""Extend the framework: analyse a DHT design that is *not* in the paper.

The RCM framework is deliberately pluggable: a new routing geometry only has
to provide its distance distribution ``n(h)`` and its per-phase failure
probability ``Q(m)``; routability, failed-path curves and the scalability
verdict come for free.  This example analyses a "redundant tree": a
Plaxton-style geometry in which every routing-table slot holds ``k``
independent candidate neighbours (a common real-world hardening trick), so
a phase only fails when all ``k`` candidates are down:

    n(h) = C(d, h)           (same as the tree)
    Q(m) = q^k               (instead of q)

With ``k = 1`` this is exactly the paper's unscalable tree; the example
shows how quickly redundancy buys resilience at finite sizes — and that for
any constant ``k`` the geometry is *still* unscalable, because ``sum q^k``
over the phases remains a divergent constant series.  That nuance is the
kind of conclusion the RCM makes cheap to reach.
"""

from __future__ import annotations

import numpy as np

from repro import RoutingGeometry, ScalabilityVerdict
from repro.core.geometries._binomial import log_binomial_distance_distribution
from repro.core.scalability import assess_scalability
from repro.report import render_table


class RedundantTreeGeometry(RoutingGeometry):
    """Plaxton tree with ``k`` independent candidates per routing-table slot."""

    name = "redundant-tree"
    system_name = "hardened Plaxton"

    def __init__(self, redundancy: int = 2) -> None:
        if redundancy < 1:
            raise ValueError("redundancy must be at least 1")
        self.redundancy = int(redundancy)

    def log_distance_distribution(self, d: int) -> np.ndarray:
        return log_binomial_distance_distribution(d)

    def phase_failure_probability(self, m: int, q: float, d: int) -> float:
        return q**self.redundancy

    def scalability(self) -> ScalabilityVerdict:
        return ScalabilityVerdict(
            geometry=self.name,
            scalable=False,
            series_behaviour=f"sum_m q^{self.redundancy} diverges (constant terms)",
            argument=(
                "Redundancy shrinks the per-phase failure probability to q^k but does not make it decay "
                "with the remaining distance, so the failure series still diverges and the geometry "
                "remains unscalable in the paper's sense."
            ),
        )


def finite_size_payoff() -> None:
    """How much routability redundancy buys at realistic sizes."""
    rows = []
    for redundancy in (1, 2, 3, 4):
        geometry = RedundantTreeGeometry(redundancy)
        rows.append(
            {
                "redundancy_k": redundancy,
                "routability_d16_q30": geometry.routability(0.3, d=16),
                "routability_d24_q30": geometry.routability(0.3, d=24),
                "routability_d100_q30": geometry.routability(0.3, d=100),
            }
        )
    print(render_table(rows, title="Redundant tree: finite-size payoff of k candidates per slot"))
    print()


def asymptotic_verdict() -> None:
    """The scalability verdict, cross-checked numerically by the framework."""
    rows = []
    for redundancy in (1, 2, 4):
        assessment = assess_scalability(RedundantTreeGeometry(redundancy), q=0.3)
        rows.append(
            {
                "redundancy_k": redundancy,
                "scalable": assessment.verdict.scalable,
                "numerical_series_converges": assessment.series_diagnostic.converges,
                "numerical_success_limit": assessment.success_limit_estimate or 0.0,
                "analysis_and_numerics_agree": assessment.consistent,
            }
        )
    print(render_table(rows, title="Redundant tree: asymptotic verdict (still unscalable for any fixed k)"))


def main() -> None:
    finite_size_payoff()
    asymptotic_verdict()


if __name__ == "__main__":
    main()
