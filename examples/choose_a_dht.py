#!/usr/bin/env python3
"""Capacity planning: which DHT routing geometry survives *your* deployment?

The paper's concluding remark is that designers "can use the method to
assess the performance of proposed architectures and to choose robust
routing algorithms".  This example does exactly that for a hypothetical
file-sharing deployment:

* expected population: 4 million nodes (d ≈ 22),
* observed short-term node failure rate: 20% (churned peers whose routing
  table entries have not been repaired yet),
* service target: at least 90% of lookups must still succeed.

It ranks the five geometries against the target, then shows how far each
geometry could scale before dropping below the target — including how many
extra links the Symphony design would need to stay in the race.
"""

from __future__ import annotations

import math

from repro import PAPER_GEOMETRIES, get_geometry, routability
from repro.report import render_table

EXPECTED_NODES = 4_000_000
FAILURE_RATE = 0.2
TARGET_ROUTABILITY = 0.9


def identifier_length_for(nodes: int) -> int:
    """Smallest identifier length whose fully populated space holds ``nodes``."""
    return max(1, math.ceil(math.log2(nodes)))


def rank_geometries() -> None:
    """Rank the five basic geometries against the deployment target."""
    d = identifier_length_for(EXPECTED_NODES)
    rows = []
    for geometry in PAPER_GEOMETRIES:
        value = routability(geometry, FAILURE_RATE, d=d)
        rows.append(
            {
                "geometry": geometry,
                "system": get_geometry(geometry).system_name,
                "routability": value,
                "meets_90pct_target": value >= TARGET_ROUTABILITY,
            }
        )
    rows.sort(key=lambda row: row["routability"], reverse=True)
    print(
        render_table(
            rows,
            title=(
                f"Deployment check: N≈{EXPECTED_NODES:,} (d={d}), q={FAILURE_RATE:.0%}, "
                f"target {TARGET_ROUTABILITY:.0%}"
            ),
        )
    )
    print()


def maximum_supported_size() -> None:
    """Largest network each geometry supports before dropping below the target."""
    rows = []
    for geometry in PAPER_GEOMETRIES:
        model = get_geometry(geometry)
        supported = None
        for d in range(4, 41):
            if model.routability(FAILURE_RATE, d=d) >= TARGET_ROUTABILITY:
                supported = d
        rows.append(
            {
                "geometry": geometry,
                "largest_supported_d": supported if supported is not None else "none",
                "largest_supported_n": f"2^{supported}" if supported is not None else "-",
            }
        )
    print(
        render_table(
            rows,
            title=f"Largest size with routability >= {TARGET_ROUTABILITY:.0%} at q={FAILURE_RATE:.0%}",
        )
    )
    print()


def symphony_upgrade_path() -> None:
    """How many links Symphony needs to clear the target at the deployment size."""
    d = identifier_length_for(EXPECTED_NODES)
    rows = []
    for near_neighbors, shortcuts in ((1, 1), (2, 2), (4, 4), (8, 8), (16, 8)):
        value = routability(
            "smallworld", FAILURE_RATE, d=d, near_neighbors=near_neighbors, shortcuts=shortcuts
        )
        rows.append(
            {
                "kn": near_neighbors,
                "ks": shortcuts,
                "routability": value,
                "meets_target": value >= TARGET_ROUTABILITY,
            }
        )
    print(
        render_table(
            rows,
            title=f"Symphony with extra links at d={d}, q={FAILURE_RATE:.0%} "
            "(the paper's 'add enough sequential neighbors' remark, quantified)",
        )
    )


def main() -> None:
    rank_geometries()
    maximum_supported_size()
    symphony_upgrade_path()


if __name__ == "__main__":
    main()
