#!/usr/bin/env python3
"""Rebuild a miniature Figure 6: overlay simulation vs RCM prediction.

This example walks the full simulation pipeline explicitly — build an
overlay, inject failures, route sampled pairs — instead of using the
one-call ``simulate_geometry`` helper, so it doubles as a tour of the
simulator API.  It then prints the measured percent of failed paths next to
the analytical prediction for the same overlay size.

Usage: ``python examples/simulation_vs_analysis.py [geometry] [d]``
(defaults: ``xor`` and ``d=11``).
"""

from __future__ import annotations

import sys

import numpy as np

from repro import OVERLAY_CLASSES, failed_path_percent
from repro.dht import UniformNodeFailure, summarize_routes
from repro.report import render_table
from repro.sim import sample_survivor_pairs

FAILURE_PROBABILITIES = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7)
PAIRS_PER_POINT = 1500


def measure_failed_paths(geometry: str, d: int, seed: int = 11) -> list:
    """Measure the percent of failed paths for one geometry across the q sweep."""
    rng = np.random.default_rng(seed)
    overlay = OVERLAY_CLASSES[geometry].build(d, rng=rng)
    rows = []
    for q in FAILURE_PROBABILITIES:
        failure_model = UniformNodeFailure(q)
        alive = failure_model.sample(overlay.n_nodes, rng)
        if int(alive.sum()) < 2:
            continue
        pairs = sample_survivor_pairs(alive, PAIRS_PER_POINT, rng)
        metrics = summarize_routes(
            overlay.route(source, destination, alive) for source, destination in pairs
        )
        rows.append(
            {
                "q": q,
                "simulated_failed_percent": 100.0 * metrics.failed_path_fraction,
                "analytical_failed_percent": failed_path_percent(geometry, q, d=d),
                "mean_hops_when_successful": metrics.mean_hops_successful,
            }
        )
    return rows


def main() -> None:
    geometry = sys.argv[1] if len(sys.argv) > 1 else "xor"
    d = int(sys.argv[2]) if len(sys.argv) > 2 else 11
    if geometry not in OVERLAY_CLASSES:
        raise SystemExit(f"unknown geometry {geometry!r}; choose from {sorted(OVERLAY_CLASSES)}")
    rows = measure_failed_paths(geometry, d)
    print(
        render_table(
            rows,
            title=f"Percent of failed paths — {geometry} overlay with N = 2^{d} (cf. Figure 6)",
        )
    )


if __name__ == "__main__":
    main()
